// Crash-consistent durability: every engine that can run with a
// wal::GroupCommitLog must satisfy three properties on the deterministic
// simulator:
//
//  1. Durability is observationally inert: a capped durable run commits the
//     same transaction multiset (and canonical digest) as the same run with
//     durability off — group commit delays acknowledgement, never changes
//     what commits.
//
//  2. Crash-replay equivalence: kill the durable run at an arbitrary
//     virtual time (modeled as truncating every partition log to its last
//     completed sync), recover into a freshly loaded database, and resume
//     with the recovered per-producer commit credits while skipping the
//     same per-worker source prefix. The resumed database must digest
//     identically to the clean run: nothing durable is lost, nothing is
//     applied twice, and the resumed workers re-execute exactly the
//     non-durable remainder.
//
//  3. Recovery is defensive: torn tails truncate at the first bad frame,
//     replay is idempotent (max-version-wins), and a mid-frame truncation
//     only ever shrinks the durable prefix — it never aborts recovery or
//     invents state.
//
// The crash test compares CanonicalDigest only: the order/history rings
// live outside the lock-managed tables and are not logged (they are
// derivable state), so a recovered database reloads them from the seeded
// load. Delivery stays comparable because the seeded-frontier cap
// (DeliveryLogic::DeliverableEnd) makes delivered order contents
// load-deterministic, and the remaining canonical-column effects are
// commutative sums and counters.
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fnv.h"
#include "engine/deadlockfree/deadlockfree_engine.h"
#include "engine/orthrus/orthrus_engine.h"
#include "engine/partitioned/partitioned_engine.h"
#include "engine/sharedcc/sharedcc_engine.h"
#include "engine/twopl/twopl_engine.h"
#include "hal/native_platform.h"
#include "hal/sim_platform.h"
#include "wal/wal.h"
#include "workload/micro.h"
#include "workload/tpcc/tpcc_workload.h"

namespace orthrus {
namespace {

constexpr int kWorkers = 3;  // transaction-running workers per engine
constexpr std::uint64_t kTxnsPerWorker = 25;
constexpr int kOrthrusCc = 2;

// Resume-side source alignment: a recovered run must not re-draw the
// transactions its previous incarnation already made durable, so each
// worker's source skips its durable prefix. TxnSource::Next only advances
// the stream's RNG (reconnaissance happens at plan time), so skipped draws
// have no side effects.
class SkippingWorkload final : public workload::Workload {
 public:
  SkippingWorkload(workload::Workload* inner,
                   const std::vector<std::uint64_t>* skip)
      : inner_(inner), skip_(skip) {}

  void Load(storage::Database* db, int num_table_partitions) override {
    inner_->Load(db, num_table_partitions);
  }
  std::unique_ptr<workload::TxnSource> MakeSource(int worker_id) const
      override {
    std::unique_ptr<workload::TxnSource> src = inner_->MakeSource(worker_id);
    const std::uint64_t n =
        worker_id >= 0 && worker_id < static_cast<int>(skip_->size())
            ? (*skip_)[static_cast<std::size_t>(worker_id)]
            : 0;
    txn::Txn scratch;
    for (std::uint64_t i = 0; i < n; ++i) src->Next(&scratch);
    return src;
  }
  std::string name() const override { return inner_->name(); }

 private:
  workload::Workload* inner_;
  const std::vector<std::uint64_t>* skip_;
};

engine::EngineOptions CappedOptions(int cores) {
  engine::EngineOptions o;
  o.num_cores = cores;
  // Virtual-time budget far beyond what the cap needs: the commit cap, not
  // the clock, ends every run (a durable run must never be cut off with
  // commits still awaiting their group commit).
  o.duration_seconds = 1000.0;
  o.max_txns_per_worker = kTxnsPerWorker;
  return o;
}

// Full five-type mix over a seeded Delivery backlog no capped run can
// exhaust, so delivered order contents stay load-deterministic across the
// clean run and any crash-resumed run.
workload::tpcc::TpccScale CrashScale() {
  workload::tpcc::TpccScale s;
  s.warehouses = 2;
  s.customers_per_district = 60;
  s.items = 200;
  s.order_ring_capacity = 1024;
  s.seeded_orders = 20;
  s.mix = workload::tpcc::FullTpccMix();
  return s;
}

// One durable engine configuration: how many cores run transactions, how
// the lock space is partitioned, and where its wal producer ids live in
// worker-id space (driver engines: producer p is worker p; ORTHRUS:
// producer p is exec thread p = worker num_cc + p).
struct EngineCase {
  const char* name;
  int cores;
  int partitions;
  int producer_base;
  int n_producers;
  std::function<std::unique_ptr<engine::Engine>(const engine::EngineOptions&)>
      make;
};

std::vector<EngineCase> DurabilityEngines() {
  std::vector<EngineCase> cases;
  cases.push_back(
      {"2pl-waitdie", kWorkers, kWorkers, 0, kWorkers,
       [](const engine::EngineOptions& o) -> std::unique_ptr<engine::Engine> {
         return std::make_unique<engine::TwoPlEngine>(
             o, engine::DeadlockPolicyKind::kWaitDie);
       }});
  cases.push_back(
      {"deadlockfree", kWorkers, kWorkers, 0, kWorkers,
       [](const engine::EngineOptions& o) -> std::unique_ptr<engine::Engine> {
         return std::make_unique<engine::DeadlockFreeEngine>(o);
       }});
  cases.push_back(
      {"partitioned", kWorkers, kWorkers, 0, kWorkers,
       [](const engine::EngineOptions& o) -> std::unique_ptr<engine::Engine> {
         return std::make_unique<engine::PartitionedEngine>(o);
       }});
  cases.push_back(
      {"sharedcc", kWorkers, kWorkers, 0, kWorkers,
       [](const engine::EngineOptions& o) -> std::unique_ptr<engine::Engine> {
         return std::make_unique<engine::SharedCcEngine>(o);
       }});
  cases.push_back(
      {"orthrus", kOrthrusCc + kWorkers, kOrthrusCc, kOrthrusCc, kWorkers,
       [](const engine::EngineOptions& o) -> std::unique_ptr<engine::Engine> {
         engine::OrthrusOptions oo;
         oo.num_cc = kOrthrusCc;
         oo.max_inflight = 1;
         return std::make_unique<engine::OrthrusEngine>(o, oo);
       }});
  return cases;
}

// Loads a fresh TPC-C database partitioned for `c` and runs the engine
// made by `c.make(o)`, returning the canonical digest and commit count.
struct TpccRun {
  std::uint64_t committed = 0;
  std::uint64_t digest = 0;
};

TEST(WalCrashReplay, KillAndRecoverMatchesTheCleanRunOnEveryEngine) {
  const workload::tpcc::TpccScale scale = CrashScale();
  const std::uint64_t want = kWorkers * kTxnsPerWorker;

  for (const EngineCase& c : DurabilityEngines()) {
    SCOPED_TRACE(c.name);

    // Durability off: the baseline the durable run must reproduce.
    std::uint64_t off_digest = 0;
    {
      workload::tpcc::TpccWorkload wl(scale);
      storage::Database db;
      wl.Load(&db, 1);
      db.partitioner().n = c.partitions;
      std::unique_ptr<engine::Engine> eng = c.make(CappedOptions(c.cores));
      hal::SimPlatform sim(c.cores);
      const RunResult r = eng->Run(&sim, &db, wl);
      ASSERT_EQ(r.total.committed, want);
      off_digest = wl.CanonicalDigest(db);
    }

    // Clean durable run: same cap, same digest, plus a settled log.
    wal::DurabilityOptions dopts;
    workload::tpcc::TpccWorkload wl(scale);
    storage::Database db;
    wl.Load(&db, 1);
    db.partitioner().n = c.partitions;
    wal::GroupCommitLog log(dopts, &db, c.n_producers);
    engine::EngineOptions durable_opts = CappedOptions(c.cores);
    durable_opts.wal = &log;
    std::unique_ptr<engine::Engine> eng = c.make(durable_opts);
    hal::SimPlatform sim(c.cores + log.loggers());
    const RunResult r = eng->Run(&sim, &db, wl);
    ASSERT_EQ(r.total.committed, want);
    const std::uint64_t clean_digest = wl.CanonicalDigest(db);
    EXPECT_EQ(clean_digest, off_digest)
        << "group commit changed what the run commits";
    const hal::Cycles end = sim.GlobalClock();

    // Replay completeness: the final (clean-shutdown) images alone rebuild
    // the clean database with full per-producer credit.
    {
      workload::tpcc::TpccWorkload rwl(scale);
      storage::Database rdb;
      rwl.Load(&rdb, 1);
      const wal::RecoveryResult rec =
          wal::Recover(log.FinalImages(), c.n_producers, &rdb);
      EXPECT_EQ(rwl.CanonicalDigest(rdb), clean_digest);
      EXPECT_EQ(rec.frames_dropped, 0u);
      std::uint64_t durable_total = 0;
      for (const std::uint64_t d : rec.durable_per_producer)
        durable_total += d;
      EXPECT_EQ(durable_total, want);
    }

    // Kill at several virtual times: t = 0 (nothing synced yet — recovery
    // finds nothing and the resume re-runs everything) and two mid-run
    // points where some epochs are durable and some are lost.
    for (const double frac : {0.0, 0.35, 0.7}) {
      SCOPED_TRACE(frac);
      const hal::Cycles t =
          static_cast<hal::Cycles>(frac * static_cast<double>(end));
      workload::tpcc::TpccWorkload rwl(scale);
      storage::Database rdb;
      rwl.Load(&rdb, 1);
      rdb.partitioner().n = c.partitions;
      const wal::RecoveryResult rec =
          wal::Recover(log.CrashImagesAt(t), c.n_producers, &rdb);

      std::vector<std::uint64_t> credit(static_cast<std::size_t>(c.cores), 0);
      std::uint64_t resumed = 0;
      for (int p = 0; p < c.n_producers; ++p) {
        credit[static_cast<std::size_t>(c.producer_base + p)] =
            rec.durable_per_producer[static_cast<std::size_t>(p)];
        resumed += rec.durable_per_producer[static_cast<std::size_t>(p)];
      }
      SkippingWorkload skipped(&rwl, &credit);
      engine::EngineOptions resume_opts = CappedOptions(c.cores);
      resume_opts.resume_committed = &credit;
      std::unique_ptr<engine::Engine> resumed_eng = c.make(resume_opts);
      hal::SimPlatform resume_sim(c.cores);
      const RunResult rr = resumed_eng->Run(&resume_sim, &rdb, skipped);
      EXPECT_EQ(rr.total.committed, want - resumed);
      EXPECT_EQ(rwl.CanonicalDigest(rdb), clean_digest)
          << "crash at " << t << " of " << end << " diverged after resume ("
          << resumed << " durable, " << rec.durable_epoch
          << " durable epochs)";
    }
  }
}

// --------------------------------------------------------------- recovery

// One durable 2PL run shared by the recovery-robustness assertions below.
struct DurableRunFixture {
  workload::tpcc::TpccScale scale;
  std::uint64_t clean_digest = 0;
  std::vector<std::vector<std::uint8_t>> images;

  DurableRunFixture() {
    scale.warehouses = 2;
    scale.customers_per_district = 60;
    scale.items = 200;
    scale.order_ring_capacity = 1024;  // default NewOrder/Payment mix
    workload::tpcc::TpccWorkload wl(scale);
    storage::Database db;
    wl.Load(&db, 1);
    db.partitioner().n = kWorkers;
    wal::DurabilityOptions dopts;
    wal::GroupCommitLog log(dopts, &db, kWorkers);
    engine::EngineOptions o = CappedOptions(kWorkers);
    o.wal = &log;
    engine::TwoPlEngine eng(o, engine::DeadlockPolicyKind::kWaitDie);
    hal::SimPlatform sim(kWorkers + log.loggers());
    const RunResult r = eng.Run(&sim, &db, wl);
    ORTHRUS_CHECK(r.total.committed == kWorkers * kTxnsPerWorker);
    clean_digest = wl.CanonicalDigest(db);
    images = log.FinalImages();
  }
};

TEST(WalRecovery, ReplayIsIdempotent) {
  DurableRunFixture fx;
  workload::tpcc::TpccWorkload wl(fx.scale);
  storage::Database db;
  wl.Load(&db, 1);

  const wal::RecoveryResult base = wal::Recover(fx.images, kWorkers, &db);
  EXPECT_EQ(wl.CanonicalDigest(db), fx.clean_digest);
  EXPECT_EQ(base.frames_dropped, 0u);
  EXPECT_EQ(base.txns_replayed, kWorkers * kTxnsPerWorker);
  EXPECT_GT(base.writes_applied, 0u);
  EXPECT_GT(base.durable_epoch, 0u);

  // Replaying the same images over the already-recovered database must be
  // a no-op on the final state: within one pass max-version-wins picks the
  // same final after-image for every row.
  const wal::RecoveryResult again = wal::Recover(fx.images, kWorkers, &db);
  EXPECT_EQ(wl.CanonicalDigest(db), fx.clean_digest);
  EXPECT_EQ(again.txns_replayed, base.txns_replayed);
  EXPECT_EQ(again.durable_epoch, base.durable_epoch);
}

TEST(WalRecovery, TornTailGarbageIsDropped) {
  DurableRunFixture fx;
  // Garbage past the last synced frame — the torn tail a crash mid-write
  // leaves behind. Recovery must drop it and lose nothing durable.
  std::vector<std::vector<std::uint8_t>> torn = fx.images;
  torn[0].insert(torn[0].end(), 13, std::uint8_t{0x5a});

  workload::tpcc::TpccWorkload wl(fx.scale);
  storage::Database db;
  wl.Load(&db, 1);
  const wal::RecoveryResult rec = wal::Recover(torn, kWorkers, &db);
  EXPECT_EQ(rec.frames_dropped, 1u);
  EXPECT_EQ(rec.txns_replayed, kWorkers * kTxnsPerWorker);
  EXPECT_EQ(wl.CanonicalDigest(db), fx.clean_digest);
}

TEST(WalRecovery, MidFrameTruncationShrinksTheDurablePrefixAndResumes) {
  DurableRunFixture fx;
  const wal::RecoveryResult base = [&fx] {
    workload::tpcc::TpccWorkload wl(fx.scale);
    storage::Database db;
    wl.Load(&db, 1);
    return wal::Recover(fx.images, kWorkers, &db);
  }();

  // Chop into partition 1's final frame (its last epoch seal): that
  // partition's sealed epoch drops, dragging the global durable epoch —
  // and with it some producers' credit — down with it.
  std::vector<std::vector<std::uint8_t>> chopped = fx.images;
  ASSERT_GT(chopped[1].size(), 5u);
  chopped[1].resize(chopped[1].size() - 5);

  workload::tpcc::TpccWorkload wl(fx.scale);
  storage::Database db;
  wl.Load(&db, 1);
  db.partitioner().n = kWorkers;
  const wal::RecoveryResult rec = wal::Recover(chopped, kWorkers, &db);
  EXPECT_EQ(rec.frames_dropped, 1u);
  EXPECT_LT(rec.durable_epoch, base.durable_epoch);
  EXPECT_LE(rec.txns_replayed, base.txns_replayed);

  // The shrunken prefix is still a valid resume point: re-running the
  // non-durable remainder reproduces the clean digest.
  std::vector<std::uint64_t> credit(kWorkers, 0);
  std::uint64_t resumed = 0;
  for (int p = 0; p < kWorkers; ++p) {
    credit[static_cast<std::size_t>(p)] =
        rec.durable_per_producer[static_cast<std::size_t>(p)];
    resumed += rec.durable_per_producer[static_cast<std::size_t>(p)];
  }
  SkippingWorkload skipped(&wl, &credit);
  engine::EngineOptions o = CappedOptions(kWorkers);
  o.resume_committed = &credit;
  engine::TwoPlEngine eng(o, engine::DeadlockPolicyKind::kWaitDie);
  hal::SimPlatform sim(kWorkers);
  const RunResult r = eng.Run(&sim, &db, skipped);
  EXPECT_EQ(r.total.committed, kWorkers * kTxnsPerWorker - resumed);
  EXPECT_EQ(wl.CanonicalDigest(db), fx.clean_digest);
}

// -------------------------------------------------------------- rebalance

// Log-stream ownership moves across loggers through the lock::SpaceMap
// handoff protocol while producers keep committing: with two loggers and a
// rotation every three epochs, the run exercises many handoffs, and the
// log must still recover to the exact clean state.
TEST(WalRebalance, TwoLoggerHandoffPreservesTheLog) {
  workload::tpcc::TpccScale scale;
  scale.warehouses = 2;
  scale.customers_per_district = 60;
  scale.items = 200;
  scale.order_ring_capacity = 1024;

  workload::tpcc::TpccWorkload wl(scale);
  storage::Database db;
  wl.Load(&db, 1);
  db.partitioner().n = kWorkers;
  wal::DurabilityOptions dopts;
  dopts.loggers = 2;
  dopts.rebalance_epochs = 3;
  dopts.group_commit_seconds = 5e-6;  // short epochs: many rotations
  wal::GroupCommitLog log(dopts, &db, kWorkers);
  engine::EngineOptions o = CappedOptions(kWorkers);
  o.wal = &log;
  engine::TwoPlEngine eng(o, engine::DeadlockPolicyKind::kWaitDie);
  hal::SimPlatform sim(kWorkers + log.loggers());
  const RunResult r = eng.Run(&sim, &db, wl);
  ASSERT_EQ(r.total.committed, kWorkers * kTxnsPerWorker);
  // Enough epochs elapsed that ownership rotated at least once.
  ASSERT_GT(log.EpochRaw(), dopts.rebalance_epochs);

  workload::tpcc::TpccWorkload rwl(scale);
  storage::Database rdb;
  rwl.Load(&rdb, 1);
  const wal::RecoveryResult rec =
      wal::Recover(log.FinalImages(), kWorkers, &rdb);
  EXPECT_EQ(rec.frames_dropped, 0u);
  EXPECT_EQ(rec.txns_replayed, kWorkers * kTxnsPerWorker);
  EXPECT_EQ(rwl.CanonicalDigest(rdb), wl.CanonicalDigest(db));
}

// ---------------------------------------------------------------- elastic

std::uint64_t KvDigest(const storage::Database& db) {
  const storage::Table* table = db.GetTable(workload::KvWorkload::kTableId);
  Fnv1a fnv;
  for (std::uint64_t slot = 0; slot < table->size(); ++slot) {
    const auto* row =
        static_cast<const std::uint64_t*>(table->RowBySlot(slot));
    fnv.Mix(row[0]);
    fnv.Mix(row[1]);
  }
  return fnv.digest();
}

// Elastic thread roles compose with durability: exec threads park and
// resume their wal producers across reallocation epochs (Producer::Park /
// Resume), and neither a commit nor a log fragment is ever lost or
// duplicated — the final log replays to the exact live state and the
// durable credits account for every acknowledged commit.
TEST(WalElastic, OrthrusElasticRolesComposeWithDurability) {
  engine::OrthrusOptions oo;
  oo.num_cc = 2;
  oo.elastic = true;
  oo.elastic_epoch_seconds = 0.0002;
  workload::KvConfig kv;
  kv.num_records = 8000;
  kv.num_partitions = 2;
  workload::KvWorkload wl(kv);
  storage::Database db;
  wl.Load(&db, 1);
  const int n_exec = 8 - oo.num_cc;
  wal::DurabilityOptions dopts;
  // The default max_inflight (8) pipelines deeper than the default arena.
  dopts.arena_records = 512;
  wal::GroupCommitLog log(dopts, &db, n_exec);
  engine::EngineOptions o;
  o.num_cores = 8;
  // Time-bound: elastic mode parks threads for whole epochs, so per-worker
  // caps are not a meaningful stop condition.
  o.duration_seconds = 0.004;
  o.lock_buckets = 1 << 12;
  o.wal = &log;
  engine::OrthrusEngine eng(o, oo);
  hal::SimPlatform sim(8 + log.loggers());
  const RunResult r = eng.Run(&sim, &db, wl);
  ASSERT_GT(r.total.committed, 0u);
  // Conservation across park/resume epochs, with acknowledgement deferred
  // to group commit: every acknowledged commit applied exactly once.
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
  EXPECT_GT(eng.reallocations(), 0u);

  workload::KvWorkload rwl(kv);
  storage::Database rdb;
  rwl.Load(&rdb, 1);
  const wal::RecoveryResult rec =
      wal::Recover(log.FinalImages(), n_exec, &rdb);
  EXPECT_EQ(KvDigest(rdb), KvDigest(db));
  std::uint64_t durable_total = 0;
  for (const std::uint64_t d : rec.durable_per_producer) durable_total += d;
  EXPECT_EQ(durable_total, r.total.committed);
}

// ----------------------------------------------------------------- native

// The logger role and the producer protocol must be thread-safe under true
// concurrency, not just under the cooperative simulator: fragments cross
// real cores, log-stream handoffs carry release/acquire pairs, and the
// epoch/durable counters are genuinely shared. A capped native run still
// commits exactly the first K of each worker's stream (workers retry until
// commit), so the recovered database must digest identically to the live
// one even though the interleaving is nondeterministic.
TEST(WalNative, DurableRunRecoversOnNativeThreads) {
  workload::tpcc::TpccScale scale;
  scale.warehouses = 2;
  scale.customers_per_district = 60;
  scale.items = 200;
  scale.order_ring_capacity = 1024;

  workload::tpcc::TpccWorkload wl(scale);
  storage::Database db;
  wl.Load(&db, 1);
  db.partitioner().n = kWorkers;
  wal::DurabilityOptions dopts;
  dopts.loggers = 2;
  dopts.rebalance_epochs = 2;  // exercise native-thread stream handoffs
  wal::GroupCommitLog log(dopts, &db, kWorkers);
  engine::EngineOptions o = CappedOptions(kWorkers);
  o.duration_seconds = 30.0;  // wall seconds; the cap ends the run first
  o.wal = &log;
  engine::TwoPlEngine eng(o, engine::DeadlockPolicyKind::kWaitDie);
  hal::NativePlatform p(kWorkers + log.loggers());
  const RunResult r = eng.Run(&p, &db, wl);
  ASSERT_EQ(r.total.committed, kWorkers * kTxnsPerWorker);

  workload::tpcc::TpccWorkload rwl(scale);
  storage::Database rdb;
  rwl.Load(&rdb, 1);
  const wal::RecoveryResult rec =
      wal::Recover(log.FinalImages(), kWorkers, &rdb);
  EXPECT_EQ(rec.frames_dropped, 0u);
  EXPECT_EQ(rec.txns_replayed, kWorkers * kTxnsPerWorker);
  EXPECT_EQ(rwl.CanonicalDigest(rdb), wl.CanonicalDigest(db));
}

TEST(WalNative, ElasticOrthrusDurableOnNativeThreads) {
  // The run is wall-clock bounded; a heavily loaded or sanitizer-slowed
  // host can commit nothing inside a short window. Retry with a wider
  // window (fresh database + log each attempt) until work flows.
  for (double secs = 0.05;; secs *= 4) {
    engine::OrthrusOptions oo;
    oo.num_cc = 2;
    oo.elastic = true;
    oo.elastic_epoch_seconds = 0.0005;
    workload::KvConfig kv;
    kv.num_records = 4000;
    kv.num_partitions = 2;
    workload::KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, 1);
    const int n_exec = 6 - oo.num_cc;
    wal::DurabilityOptions dopts;
    dopts.arena_records = 512;
    wal::GroupCommitLog log(dopts, &db, n_exec);
    engine::EngineOptions o;
    o.num_cores = 6;
    o.duration_seconds = secs;  // wall seconds on the native platform
    o.lock_buckets = 1 << 12;
    o.wal = &log;
    engine::OrthrusEngine eng(o, oo);
    hal::NativePlatform p(6 + log.loggers());
    const RunResult r = eng.Run(&p, &db, wl);
    if (r.total.committed == 0 && secs < 3.0) continue;
    ASSERT_GT(r.total.committed, 0u);
    EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);

    workload::KvWorkload rwl(kv);
    storage::Database rdb;
    rwl.Load(&rdb, 1);
    const wal::RecoveryResult rec =
        wal::Recover(log.FinalImages(), n_exec, &rdb);
    EXPECT_EQ(KvDigest(rdb), KvDigest(db));
    std::uint64_t durable_total = 0;
    for (const std::uint64_t d : rec.durable_per_producer) durable_total += d;
    EXPECT_EQ(durable_total, r.total.committed);
    return;
  }
}

}  // namespace
}  // namespace orthrus
