// Unit tests for the shared transaction-runtime layer: TxnDriver's
// admission gating (deadline + commit cap), restart/backoff accounting,
// OLLP mismatch replanning, strategy-outcome plumbing, and WorkerPool's
// clock/stat aggregation and per-worker RNG streams. Uses scripted fake
// strategies on the deterministic simulator, so every counter is exact.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "hal/native_platform.h"
#include "hal/sim_platform.h"
#include "runtime/txn_driver.h"
#include "runtime/worker_pool.h"
#include "workload/workload.h"

namespace orthrus::runtime {
namespace {

// Minimal transaction type: static single-access set, Run always succeeds
// (the fake strategies below never call it).
class NoopLogic final : public txn::TxnLogic {
 public:
  void BuildAccessSet(txn::Txn* t, storage::Database*) override {
    txn::Access a;
    a.table = 0;
    a.key = 1;
    t->accesses.push_back(a);
  }
  bool Run(txn::Txn*, const txn::ExecContext&) override { return true; }
};

class NoopSource final : public workload::TxnSource {
 public:
  explicit NoopSource(txn::TxnLogic* logic) : logic_(logic) {}
  void Next(txn::Txn* t) override {
    t->ResetForReuse();
    t->logic = logic_;
    issued_++;
  }
  std::uint64_t issued() const { return issued_; }

 private:
  txn::TxnLogic* logic_;
  std::uint64_t issued_ = 0;
};

// Scripted strategy: for each transaction, emits `aborts` kAbort outcomes
// and then `mismatches` kMismatch outcomes before committing, charging
// `cycles_per_attempt` of modeled work per attempt. Records the restart
// counts and timestamps it observes.
class ScriptedStrategy final : public ExecutionStrategy {
 public:
  ScriptedStrategy(int aborts, int mismatches, hal::Cycles cycles_per_attempt)
      : aborts_(aborts),
        mismatches_(mismatches),
        cycles_per_attempt_(cycles_per_attempt) {}

  TxnOutcome TryExecute(txn::Txn* t) override {
    hal::ConsumeCycles(cycles_per_attempt_);
    attempts_++;
    observed_restarts_.push_back(t->restarts);
    if (t->restarts < static_cast<std::uint32_t>(aborts_)) {
      return TxnOutcome::kAbort;
    }
    if (t->restarts <
        static_cast<std::uint32_t>(aborts_) +
            static_cast<std::uint32_t>(mismatches_)) {
      return TxnOutcome::kMismatch;
    }
    observed_timestamps_.push_back(t->timestamp);
    return TxnOutcome::kCommitted;
  }

  std::uint64_t attempts() const { return attempts_; }
  const std::vector<std::uint32_t>& observed_restarts() const {
    return observed_restarts_;
  }
  const std::vector<std::uint64_t>& observed_timestamps() const {
    return observed_timestamps_;
  }

 private:
  int aborts_;
  int mismatches_;
  hal::Cycles cycles_per_attempt_;
  std::uint64_t attempts_ = 0;
  std::vector<std::uint32_t> observed_restarts_;
  std::vector<std::uint64_t> observed_timestamps_;
};

struct DriverRun {
  WorkerStats stats;
  std::uint64_t issued = 0;
  std::uint64_t attempts = 0;
  std::uint64_t plans = 0;
  std::uint64_t replans = 0;
  std::vector<std::uint32_t> observed_restarts;
  std::vector<std::uint64_t> observed_timestamps;
  RunResult result;
};

DriverRun RunDriver(const DriverOptions& options, double duration_seconds,
                    int aborts, int mismatches,
                    hal::Cycles cycles_per_attempt) {
  NoopLogic logic;
  NoopSource source(&logic);
  ScriptedStrategy strategy(aborts, mismatches, cycles_per_attempt);
  storage::Database db;
  hal::SimPlatform sim(1);
  WorkerPool pool(&sim, 1, duration_seconds);
  DriverRun out;
  pool.Spawn(0, [&](WorkerContext& ctx) {
    TxnDriver driver(options, &db, &source, &strategy, &ctx);
    driver.Run();
    out.plans = driver.admission().planner()->plans();
    out.replans = driver.admission().planner()->replans();
  });
  out.result = pool.Run();
  out.stats = pool.worker(0).stats;
  out.issued = source.issued();
  out.attempts = strategy.attempts();
  out.observed_restarts = strategy.observed_restarts();
  out.observed_timestamps = strategy.observed_timestamps();
  return out;
}

// The simulator's nominal clock rate, for converting cycle budgets into
// duration_seconds without hardcoding the platform constant.
double SimCps() {
  hal::SimPlatform sim(1);
  return sim.CyclesPerSecond();
}

// Virtual-time budget far beyond any commit cap: the cap, not the clock,
// ends capped runs.
constexpr double kAmpleDuration = 1000.0;

DriverOptions CappedOptions(std::uint64_t cap) {
  DriverOptions o;
  o.max_txns_per_worker = cap;
  return o;
}

// ----------------------------------------------------------- commit caps

TEST(TxnDriver, CommitCapEndsTheRunExactly) {
  const DriverRun r = RunDriver(CappedOptions(7), kAmpleDuration, 0, 0, 100);
  EXPECT_EQ(r.stats.committed, 7u);
  EXPECT_EQ(r.issued, 7u);      // nothing admitted past the cap
  EXPECT_EQ(r.attempts, 7u);    // one attempt per commit
  EXPECT_EQ(r.plans, 7u);       // one OLLP plan per admission
  EXPECT_EQ(r.replans, 0u);
  EXPECT_EQ(r.stats.aborted, 0u);
  EXPECT_EQ(r.stats.backoffs, 0u);
  EXPECT_EQ(r.result.total.committed, 7u);
  EXPECT_EQ(r.stats.txn_latency.count(), 7u);
}

// -------------------------------------------------------- deadline gating

TEST(TxnDriver, DeadlineStopsAdmission) {
  DriverOptions o;
  // 10k cycles of budget at 1k cycles per transaction: the deadline, not a
  // cap, ends the run after ~10 transactions.
  o.max_txns_per_worker = 0;
  const DriverRun r = RunDriver(o, 10000.0 / SimCps(), 0, 0, 1000);
  EXPECT_GT(r.stats.committed, 5u);
  EXPECT_LT(r.stats.committed, 15u);
  EXPECT_EQ(r.issued, r.stats.committed);  // in-flight work always drains
}

TEST(TxnDriver, InFlightTransactionFinishesPastTheDeadline) {
  DriverOptions o;
  // One attempt blows the whole budget.
  const DriverRun r = RunDriver(o, 1000.0 / SimCps(), 0, 0, 50000);
  EXPECT_EQ(r.stats.committed, 1u);  // admitted before expiry, ran to commit
  EXPECT_EQ(r.issued, 1u);
}

// ---------------------------------------------- restart/backoff counting

TEST(TxnDriver, AbortsTriggerCountedBackoffsAndRetries) {
  const DriverRun r = RunDriver(CappedOptions(5), kAmpleDuration,
                                /*aborts=*/2, /*mismatches=*/0, 100);
  EXPECT_EQ(r.stats.committed, 5u);
  EXPECT_EQ(r.stats.aborted, 10u);   // 2 per transaction
  EXPECT_EQ(r.stats.backoffs, 10u);  // every abort backs off exactly once
  EXPECT_EQ(r.attempts, 15u);        // 3 attempts per transaction
  EXPECT_EQ(r.issued, 5u);           // retries reuse the admitted txn
  // The driver resets restarts at admission and increments per abort:
  // every transaction observes 0, 1, 2.
  ASSERT_EQ(r.observed_restarts.size(), 15u);
  for (std::size_t i = 0; i < r.observed_restarts.size(); ++i) {
    EXPECT_EQ(r.observed_restarts[i], i % 3);
  }
}

TEST(TxnDriver, BackoffDelayGrowsWithRestartsAndCaps) {
  // The default policy's capped exponential, measured through the virtual
  // clock: 5 commits with 6 aborts each at zero strategy cost spend
  // (almost) exactly the backoff schedule.
  const DriverRun r = RunDriver(CappedOptions(5), kAmpleDuration,
                                /*aborts=*/6, /*mismatches=*/0, 0);
  EXPECT_EQ(r.stats.backoffs, 30u);
  // Schedule per txn: 100<<1, 100<<2, 100<<3, 100<<4, 100<<4, 100<<4 (the
  // shift caps at 4) plus jitter in [0,256) per backoff.
  const double elapsed_cycles = r.result.elapsed_seconds * SimCps();
  const double min_backoff = 5 * (200 + 400 + 800 + 1600 + 1600 + 1600);
  EXPECT_GE(elapsed_cycles, min_backoff);
  EXPECT_LT(elapsed_cycles, min_backoff + 30 * 256 + 2048);
}

TEST(TxnDriver, CustomBackoffPolicyIsConsulted) {
  class CountingPolicy final : public BackoffPolicy {
   public:
    hal::Cycles Delay(std::uint32_t restarts, Rng* rng) const override {
      calls.push_back(restarts);
      EXPECT_NE(rng, nullptr);
      return 0;
    }
    mutable std::vector<std::uint32_t> calls;
  };
  CountingPolicy policy;
  DriverOptions o = CappedOptions(2);
  o.backoff = &policy;
  const DriverRun r = RunDriver(o, kAmpleDuration, /*aborts=*/3, /*mismatches=*/0, 10);
  EXPECT_EQ(r.stats.committed, 2u);
  const std::vector<std::uint32_t> want = {1, 2, 3, 1, 2, 3};
  EXPECT_EQ(policy.calls, want);
}

// --------------------------------------------------- mismatch replanning

TEST(TxnDriver, MismatchesReplanWithoutBackoff) {
  const DriverRun r = RunDriver(CappedOptions(4), kAmpleDuration,
                                /*aborts=*/0, /*mismatches=*/3, 100);
  EXPECT_EQ(r.stats.committed, 4u);
  EXPECT_EQ(r.stats.ollp_aborts, 12u);  // 3 per transaction
  EXPECT_EQ(r.replans, 12u);
  EXPECT_EQ(r.plans, 4u);               // initial plans only
  EXPECT_EQ(r.stats.aborted, 0u);       // mismatch is not a deadlock abort
  EXPECT_EQ(r.stats.backoffs, 0u);      // and takes no backoff
  EXPECT_EQ(r.attempts, 16u);
}

TEST(TxnDriver, ExhaustedReplanBudgetDropsTheTransaction) {
  // A transaction that always mismatches must be dropped after the OLLP
  // retry budget, not spin forever; the run then ends at the deadline with
  // zero commits.
  DriverOptions o;
  const DriverRun r = RunDriver(o, 200000.0 / SimCps(), /*aborts=*/0,
                                /*mismatches=*/1 << 20, 1000);
  EXPECT_EQ(r.stats.committed, 0u);
  EXPECT_GT(r.issued, 0u);
  // Every admitted transaction burned its full budget: kMaxOllpRetries
  // replans plus the final one that returned false.
  EXPECT_EQ(r.stats.ollp_aborts, r.issued * (txn::kMaxOllpRetries + 1));
}

// -------------------------------------------------- admission stamping

TEST(TxnDriver, TimestampsAreAgeOrderedAndWorkerTagged) {
  const DriverRun r = RunDriver(CappedOptions(3), kAmpleDuration, 0, 0, 100);
  ASSERT_EQ(r.observed_timestamps.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    // (counter << kWorkerIdBits) | worker_id, counter starting at 1,
    // worker 0.
    EXPECT_EQ(r.observed_timestamps[i], (i + 1) << kWorkerIdBits);
  }
}

// Regression: the tie-break field used to be 8 bits, so worker 256 aliased
// worker 0 — (1 << 8) | 256 == (1 << 8) | 0 — and two distinct workers'
// first transactions compared equal under wait-die (and ids past 256 bled
// into the age bits, inverting age order). With the 16-bit field every
// (age, worker) pair below kMaxWorkers is distinct and age strictly
// dominates the worker tag.
TEST(TxnAdmission, TimestampTieBreakSurvivesWorker256) {
  NoopLogic logic;
  NoopSource src_a(&logic), src_b(&logic);
  storage::Database db;
  hal::SimPlatform sim(1);
  WorkerPool pool(&sim, 300, kAmpleDuration);
  DriverOptions opts;
  TxnAdmission a0(opts, &db, &src_a, &pool.worker(0));
  TxnAdmission a256(opts, &db, &src_b, &pool.worker(256));

  txn::Txn t0_first, t256_first, t0_second;
  a0.Admit(&t0_first);
  a256.Admit(&t256_first);
  a0.Admit(&t0_second);

  // Same age, different workers: distinct, ordered by worker id.
  EXPECT_NE(t0_first.timestamp, t256_first.timestamp);
  EXPECT_LT(t0_first.timestamp, t256_first.timestamp);
  // Age dominates the tie-break: worker 256's first admission is strictly
  // older than worker 0's second, despite the bigger worker tag.
  EXPECT_LT(t256_first.timestamp, t0_second.timestamp);
}

TEST(WorkerPool, RejectsWorkerIdsBeyondTheTieBreakField) {
  hal::SimPlatform sim(1);
  EXPECT_DEATH(WorkerPool(&sim, kMaxWorkers + 1, 1.0), "CHECK");
  // The full field is usable.
  WorkerPool ok(&sim, kMaxWorkers, 1.0);
  EXPECT_EQ(ok.num_workers(), kMaxWorkers);
}

// ------------------------------------------------------------ WorkerPool

TEST(WorkerPool, AggregatesStatsAndSpansClocks) {
  hal::SimPlatform sim(3);
  WorkerPool pool(&sim, 3, /*duration_seconds=*/1.0);
  for (int w = 0; w < 3; ++w) {
    pool.Spawn(w, [w](WorkerContext& ctx) {
      EXPECT_EQ(ctx.worker_id, w);
      hal::ConsumeCycles(1000 * (w + 1));
      ctx.stats.committed = static_cast<std::uint64_t>(w + 1);
      ctx.stats.Add(TimeCategory::kExecution, 10);
    });
  }
  const RunResult r = pool.Run();
  EXPECT_EQ(r.total.committed, 6u);
  ASSERT_EQ(r.per_worker.size(), 3u);
  EXPECT_EQ(r.per_worker[2].committed, 3u);
  // Elapsed spans the slowest worker's 3000 cycles of work.
  EXPECT_GE(r.elapsed_seconds, 3000.0 / SimCps());
}

TEST(WorkerPool, PerWorkerRngStreamsAreSeededAndDistinct) {
  hal::SimPlatform sim_a(2), sim_b(2);
  WorkerPool a(&sim_a, 2, 1.0, /*rng_seed=*/42);
  WorkerPool b(&sim_b, 2, 1.0, /*rng_seed=*/42);
  // Same seed, same worker: identical stream. Different workers: distinct.
  EXPECT_EQ(a.worker(0).rng.Next(), b.worker(0).rng.Next());
  EXPECT_EQ(a.worker(1).rng.Next(), b.worker(1).rng.Next());
  EXPECT_NE(a.worker(0).rng.Next(), a.worker(1).rng.Next());

  hal::SimPlatform sim_c(2);
  WorkerPool c(&sim_c, 2, 1.0, /*rng_seed=*/43);
  EXPECT_NE(c.worker(0).rng.Next(), b.worker(0).rng.Next());
}

TEST(WorkerPool, SplitRunAllowsMidpointAssertions) {
  hal::SimPlatform sim(2);
  WorkerPool pool(&sim, 2, 1.0);
  bool ran[2] = {false, false};
  for (int w = 0; w < 2; ++w) {
    pool.Spawn(w, [&ran, w](WorkerContext& ctx) {
      ran[w] = true;
      ctx.stats.committed = 1;
    });
  }
  pool.RunWorkers();
  EXPECT_TRUE(ran[0] && ran[1]);  // joined: safe to assert engine state here
  const RunResult r = pool.Finalize();
  EXPECT_EQ(r.total.committed, 2u);
}

// ----------------------------------------------------- elastic role support

TEST(WorkerPool, RoleAssignmentAndCounting) {
  hal::SimPlatform sim(5);
  WorkerPool pool(&sim, 5, 1.0);
  // Default: every worker is a flex (shared-everything) worker.
  EXPECT_EQ(pool.CountRole(WorkerRole::kFlex), 5);
  pool.AssignRole(0, WorkerRole::kCc);
  pool.AssignRole(1, WorkerRole::kCc);
  for (int w = 2; w < 5; ++w) pool.AssignRole(w, WorkerRole::kExec);
  EXPECT_EQ(pool.role(0), WorkerRole::kCc);
  EXPECT_EQ(pool.role(4), WorkerRole::kExec);
  EXPECT_EQ(pool.CountRole(WorkerRole::kCc), 2);
  EXPECT_EQ(pool.CountRole(WorkerRole::kExec), 3);
  EXPECT_EQ(pool.CountRole(WorkerRole::kFlex), 0);
}

TEST(ParkGate, ActivePrefixFollowsTarget) {
  ParkGate gate(2);
  EXPECT_EQ(gate.TargetRaw(), 2);
  EXPECT_TRUE(gate.Active(0));
  EXPECT_TRUE(gate.Active(1));
  EXPECT_FALSE(gate.Active(2));
  gate.SetTarget(0);
  EXPECT_FALSE(gate.Active(0));
  gate.SetTarget(3);
  EXPECT_TRUE(gate.Active(2));
}

// Park/resume on the simulator: a controller core lowers the target, the
// worker parks (making no progress), the controller raises it again and
// the worker resumes. Deterministic: parked time is virtual cycles.
TEST(ParkGate, SimParkAndResumeRoundTrip) {
  hal::SimPlatform sim(2);
  ParkGate gate(1);
  hal::Atomic<std::uint64_t> phase{0};  // 0 run, 1 parked-seen, 2 done
  std::uint64_t work_before = 0, work_after = 0;
  hal::Cycles parked_cycles = 0;
  sim.Spawn(0, [&] {  // worker 0 of the elastic group
    while (phase.load() == 0) {
      work_before++;
      hal::ConsumeCycles(50);
    }
    parked_cycles = gate.Park(0, [&] { return phase.load() == 2; });
    while (phase.load() != 2) {
      work_after++;
      hal::ConsumeCycles(50);
    }
  });
  sim.Spawn(1, [&] {  // controller
    hal::ConsumeCycles(5000);
    gate.SetTarget(0);  // park the worker...
    phase.store(1);
    hal::ConsumeCycles(20000);
    gate.SetTarget(1);  // ...resume it...
    hal::ConsumeCycles(20000);
    phase.store(2);  // ...and end the run
  });
  sim.Run();
  EXPECT_GT(work_before, 0u);
  EXPECT_GT(work_after, 0u);  // resumed and made progress again
  // The park spanned (most of) the controller's 20000-cycle pause.
  EXPECT_GT(parked_cycles, 10000u);
}

// Exit path: a parked worker whose group is never resumed must still leave
// when the run ends (the should_exit predicate).
TEST(ParkGate, ParkExitsOnStopWithoutResume) {
  hal::SimPlatform sim(2);
  ParkGate gate(0);  // worker 0 starts parked
  hal::Atomic<std::uint64_t> stop{0};
  bool exited = false;
  sim.Spawn(0, [&] {
    gate.Park(0, [&] { return stop.load() != 0; });
    exited = true;
  });
  sim.Spawn(1, [&] {
    hal::ConsumeCycles(30000);
    stop.store(1);
  });
  sim.Run();
  EXPECT_TRUE(exited);
  EXPECT_EQ(gate.TargetRaw(), 0);
}

// Epoch snapshots under true concurrency: workers publish their commit
// counters at quantum boundaries while a controller thread reads them
// live. TSan-clean by construction (atomics only); totals must match the
// plain stats aggregated after join.
TEST(WorkerPool, NativeEpochSnapshotsAndParkGateStress) {
  constexpr int kWorkers = 3;
  constexpr std::uint64_t kCommits = 20000;
  hal::NativePlatform platform(kWorkers + 1);
  WorkerPool pool(&platform, kWorkers + 1, /*duration_seconds=*/30.0);
  ParkGate gate(kWorkers);
  hal::Atomic<std::uint64_t> stop{0};
  for (int w = 0; w < kWorkers; ++w) {
    pool.AssignRole(w, WorkerRole::kExec);
    pool.Spawn(w, [&gate, &stop, w](WorkerContext& ctx) {
      while (ctx.stats.committed < kCommits) {
        if (!gate.Active(w)) {
          gate.Park(w, [&stop] { return stop.RawLoad() != 0; });
          continue;
        }
        ctx.stats.committed++;
        if (ctx.stats.committed % 64 == 0) ctx.PublishEpochStats();
      }
      ctx.PublishEpochStats();
    });
  }
  pool.AssignRole(kWorkers, WorkerRole::kCc);
  pool.Spawn(kWorkers, [&](WorkerContext&) {  // controller
    std::uint64_t last_seen = 0;
    int flips = 0;
    while (true) {
      std::uint64_t sum = 0;
      for (int w = 0; w < kWorkers; ++w) {
        sum += pool.worker(w).ReadEpochSnapshot().committed;
      }
      // Published counters are monotone across reads.
      ORTHRUS_CHECK(sum >= last_seen);
      last_seen = sum;
      if (sum >= kWorkers * kCommits) break;
      // Exercise park/resume churn while traffic is live.
      gate.SetTarget(flips % 2 == 0 ? 1 : kWorkers);
      flips++;
      hal::CpuRelax();
    }
    gate.SetTarget(kWorkers);  // resume everyone so stragglers finish
  });
  pool.RunWorkers();
  stop.RawStore(1);
  const RunResult r = pool.Finalize();
  EXPECT_EQ(r.total.committed, kWorkers * kCommits);
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(pool.worker(w).ReadEpochSnapshot().committed, kCommits);
  }
}

}  // namespace
}  // namespace orthrus::runtime
