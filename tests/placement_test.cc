// Tests for the NUMA placement subsystem: hal::Topology (modeled and
// discovered socket maps, socket-major group packing), hal::SlabArena
// (line-aligned zeroed carving, node-keyed arena sets), the simulator's
// two-socket cost model (local transfers cheaper than remote, determinism
// with placement on), the byte-identity guarantee when placement is off,
// and the backpressure admission controller's AIMD cap. The *Native*
// cases stress arena-backed runs with thread pinning on real threads and
// are part of the TSan CI lane.
#include <cstdint>
#include <tuple>

#include <gtest/gtest.h>

#include "engine/orthrus/orthrus_engine.h"
#include "hal/native_platform.h"
#include "hal/sim_platform.h"
#include "hal/slab_arena.h"
#include "hal/topology.h"
#include "runtime/txn_driver.h"
#include "workload/micro.h"

namespace orthrus {
namespace {

using engine::EngineOptions;
using engine::OrthrusEngine;
using engine::OrthrusOptions;
using workload::KvConfig;
using workload::KvWorkload;

TEST(Topology, ModeledMatchesSimSocketMap) {
  // Core i on socket i % sockets — the same map SimPlatform uses, so
  // placement decisions and modeled transfer costs agree.
  const hal::Topology t = hal::Topology::Modeled(8, 2);
  EXPECT_EQ(t.num_cores(), 8);
  EXPECT_EQ(t.num_sockets(), 2);
  EXPECT_FALSE(t.flat());
  for (int c = 0; c < 8; ++c) EXPECT_EQ(t.SocketOf(c), c % 2);
  EXPECT_EQ(t.CoresOn(0), (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(t.CoresOn(1), (std::vector<int>{1, 3, 5, 7}));
}

TEST(Topology, FlatAndDefaultOptionsAreFlat) {
  EXPECT_TRUE(hal::Topology::Flat(16).flat());
  // TopologyOptions{} is the "placement off" state.
  EXPECT_TRUE(hal::Topology::Make(hal::TopologyOptions{}, 8).flat());
  EXPECT_FALSE(
      hal::Topology::Make(hal::TopologyOptions{.sockets = 2}, 8).flat());
}

TEST(Topology, DiscoverReturnsUsableTopology) {
  // Whatever the host looks like (or the flat fallback), the result must
  // be internally consistent: every core maps to a socket that lists it.
  const hal::Topology t = hal::Topology::Discover();
  ASSERT_GE(t.num_cores(), 1);
  ASSERT_GE(t.num_sockets(), 1);
  for (int c = 0; c < t.num_cores(); ++c) {
    const int s = t.SocketOf(c);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, t.num_sockets());
    const auto& on = t.CoresOn(s);
    EXPECT_NE(std::find(on.begin(), on.end(), c), on.end());
  }
}

TEST(Topology, PackGroupsIsSocketMajor) {
  // Group 0 (CC) fills socket 0's cores first; group 1 (exec) takes the
  // remainder. Worker ids key the result regardless of listing order.
  const hal::Topology t = hal::Topology::Modeled(8, 2);
  const std::vector<int> m =
      t.PackGroups({{0, 1, 2}, {3, 4, 5, 6, 7}});
  EXPECT_EQ(m, (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
  // On a flat topology socket-major order degenerates to identity.
  const hal::Topology f = hal::Topology::Flat(4);
  EXPECT_EQ(f.PackGroups({{0, 1}, {2, 3}}),
            (std::vector<int>{0, 1, 2, 3}));
}

TEST(SlabArena, CarvesAlignedZeroedChunks) {
  hal::SlabArena arena;
  void* a = arena.Allocate(100);  // default 64-byte (line) alignment
  void* b = arena.Allocate(8, 512);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 512, 0u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(static_cast<std::uint8_t*>(a)[i], 0);
  }
  std::uint64_t* arr = arena.AllocateArray<std::uint64_t>(1000);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(arr[i], 0u);
  EXPECT_GE(arena.bytes_used(), 100 + 8 + 8000u);
}

TEST(SlabArena, GrowsAcrossSlabs) {
  hal::SlabArenaOptions opts;
  opts.slab_bytes = 1u << 16;
  hal::SlabArena arena(opts);
  for (int i = 0; i < 40; ++i) {
    void* p = arena.Allocate(8 << 10);
    ASSERT_NE(p, nullptr);
  }
  EXPECT_GT(arena.slabs(), 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(SlabArena, NodeArenaSetIsLazyAndKeyed) {
  hal::NodeArenaSet set;
  hal::SlabArena* unbound = set.ForNode(-1);
  EXPECT_EQ(unbound, set.ForNode(-1));
  EXPECT_EQ(unbound->node(), -1);
  hal::SlabArena* n0 = set.ForNode(0);
  hal::SlabArena* n1 = set.ForNode(1);
  EXPECT_NE(n0, n1);
  EXPECT_NE(n0, unbound);
  EXPECT_EQ(n0->node(), 0);
  EXPECT_EQ(n1->node(), 1);
  EXPECT_EQ(n0, set.ForNode(0));
}

// Measures the cost of one atomic load on `reader` after `owner` has taken
// the line, on a 4-core / 2-socket sim (cores 0,2 on socket 0; 1,3 on 1).
hal::Cycles ReadCostFrom(int reader) {
  hal::SimConfig cfg;
  cfg.sockets = 2;
  hal::SimPlatform sim(4, cfg);
  hal::Atomic<std::uint64_t> line;
  hal::Cycles cost = 0;
  sim.Spawn(0, [&] { line.fetch_add(1); });  // own the line at t=0
  sim.Spawn(reader, [&] {
    hal::ConsumeCycles(50000);
    const hal::Cycles t0 = hal::Now();
    (void)line.load();
    cost = hal::Now() - t0;
  });
  sim.Run();
  return cost;
}

TEST(SimNuma, LocalTransfersCheaperThanRemote) {
  hal::SimConfig cfg;
  const hal::Cycles local = ReadCostFrom(/*reader=*/2);   // same socket
  const hal::Cycles remote = ReadCostFrom(/*reader=*/1);  // across sockets
  EXPECT_LT(local, remote);
  // Local transfers bypass the interconnect: cost is bounded by the local
  // hop plus the owner's RMW service window, with no fabric queueing term.
  EXPECT_LE(local, cfg.local_transfer_cycles + cfg.rmw_service_cycles + 4);
  EXPECT_GE(remote, cfg.remote_transfer_cycles);
}

// One small deterministic engine run; returns the digest-relevant tuple.
std::tuple<std::uint64_t, std::uint64_t, hal::Cycles> EngineRun(
    const hal::Topology* topo, int sockets) {
  KvConfig kv;
  kv.num_records = 4000;
  kv.hot_records = 16;
  kv.num_partitions = 2;
  KvWorkload wl(kv);
  storage::Database db;
  wl.Load(&db, 1);
  EngineOptions eo;
  eo.num_cores = 6;
  eo.duration_seconds = 0.05;
  eo.max_txns_per_worker = 120;
  eo.lock_buckets = 1 << 12;
  eo.topology = topo;
  OrthrusOptions oo;
  oo.num_cc = 2;
  OrthrusEngine eng(eo, oo);
  hal::SimConfig cfg;
  cfg.sockets = sockets;
  hal::SimPlatform sim(6, cfg);
  RunResult r = eng.Run(&sim, &db, wl);
  return {r.total.committed, wl.SumCounters(db), sim.GlobalClock()};
}

TEST(SimNuma, FlatTopologyIsByteIdentical) {
  // The placement-off contract: no topology, an explicit flat topology,
  // and a sockets=1 sim config all produce the same schedule — committed
  // count, row effects, and the global sim clock.
  const hal::Topology flat = hal::Topology::Flat(6);
  const auto none = EngineRun(nullptr, 1);
  const auto with_flat = EngineRun(&flat, 1);
  EXPECT_GT(std::get<0>(none), 0u);
  EXPECT_EQ(none, with_flat);
}

TEST(SimNuma, PlacementIsDeterministic) {
  // With two modeled sockets and a matching topology, runs repeat exactly
  // (placement must not introduce schedule nondeterminism), commits land,
  // and effects conserve.
  const hal::Topology topo = hal::Topology::Modeled(6, 2);
  const auto a = EngineRun(&topo, 2);
  const auto b = EngineRun(&topo, 2);
  EXPECT_GT(std::get<0>(a), 0u);
  EXPECT_EQ(std::get<1>(a), std::get<0>(a) * 10);
  EXPECT_EQ(a, b);
}

class NeverSource final : public workload::TxnSource {
 public:
  void Next(txn::Txn*) override {}
};

TEST(Backpressure, InflightCapFollowsStallsAimd) {
  hal::SimPlatform sim(1);
  sim.Spawn(0, [&] {
    storage::Database db;
    NeverSource src;
    runtime::WorkerContext ctx;
    runtime::DriverOptions opts;
    opts.backpressure = true;
    opts.backpressure_epoch_seconds = 1e-6;  // 2000 sim cycles at 2 GHz
    runtime::TxnAdmission adm(opts, &db, &src, &ctx);
    EXPECT_EQ(adm.InflightCap(8), 8);  // first call baselines the window
    // A stall inside the window cuts the cap by a quarter per epoch.
    ctx.stats.send_stalls += 3;
    hal::ConsumeCycles(2500);
    EXPECT_EQ(adm.InflightCap(8), 6);
    ctx.stats.send_stalls += 1;
    hal::ConsumeCycles(2500);
    EXPECT_EQ(adm.InflightCap(8), 5);
    // Clean windows probe back up one slot at a time, capped at base.
    for (int expect : {6, 7, 8, 8}) {
      hal::ConsumeCycles(2500);
      EXPECT_EQ(adm.InflightCap(8), expect);
    }
    // Mid-epoch calls return the current cap without re-evaluating.
    ctx.stats.send_stalls += 10;
    EXPECT_EQ(adm.InflightCap(8), 8);
  });
  sim.Run();
}

TEST(Backpressure, OffReturnsBaseUnconditionally) {
  // The off path must not read the clock (byte-identity when disabled), so
  // it works outside any core context too.
  storage::Database db;
  NeverSource src;
  runtime::WorkerContext ctx;
  runtime::DriverOptions opts;
  runtime::TxnAdmission adm(opts, &db, &src, &ctx);
  ctx.stats.send_stalls = 1 << 20;
  EXPECT_EQ(adm.InflightCap(4), 4);
  EXPECT_EQ(adm.InflightCap(4), 4);
}

TEST(SlabArena, NativeNodeBindingAndHugePagesDegrade) {
  // mbind and MAP_HUGETLB are best-effort: on hosts without multiple NUMA
  // nodes or reserved huge pages, allocation must still succeed.
  hal::SlabArenaOptions opts;
  opts.node = 0;
  opts.huge_pages = true;
  hal::SlabArena arena(opts);
  std::uint64_t* p = arena.AllocateArray<std::uint64_t>(1 << 16);
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[(1 << 16) - 1] = 2;
  EXPECT_EQ(p[0] + p[(1 << 16) - 1], 3u);
}

TEST(Placement, NativePinnedArenaBackedRun) {
  // Full stack on real threads: modeled topology placement, pinned
  // workers, arena-backed tables and rings, backpressure admission. TSan
  // covers the cross-thread handoffs.
  const hal::Topology topo = hal::Topology::Modeled(6, 2);
  KvConfig kv;
  kv.num_records = 8000;
  kv.num_partitions = 2;
  KvWorkload wl(kv);
  hal::SlabArena arena;
  storage::Database db;
  db.set_arena(&arena);
  wl.Load(&db, 1);
  EngineOptions eo;
  eo.num_cores = 6;
  eo.duration_seconds = 0.05;  // wall seconds on the native platform
  eo.topology = &topo;
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.backpressure_admission = true;
  oo.backpressure_epoch_seconds = 0.0005;
  OrthrusEngine eng(eo, oo);
  hal::NativePlatform p(6);
  p.SetPinThreads(true);
  RunResult r = eng.Run(&p, &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
}

TEST(Placement, NativeElasticPlacedMeshStress) {
  // The elastic single-shard MPSC mesh with placement-homed rings under
  // true concurrency — the configuration the NUMA ablation leans on.
  const hal::Topology topo = hal::Topology::Modeled(8, 2);
  KvConfig kv;
  kv.num_records = 8000;
  kv.num_partitions = 4;
  KvWorkload wl(kv);
  storage::Database db;
  wl.Load(&db, 1);
  EngineOptions eo;
  eo.num_cores = 8;
  eo.duration_seconds = 0.05;
  eo.topology = &topo;
  OrthrusOptions oo;
  oo.num_cc = 4;
  oo.elastic = true;
  oo.elastic_shards = 1;
  oo.elastic_min_exec = 4;
  OrthrusEngine eng(eo, oo);
  hal::NativePlatform p(8);
  p.SetPinThreads(true);
  RunResult r = eng.Run(&p, &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
}

}  // namespace
}  // namespace orthrus
