// Race-detector regression tests.
//
// Three layers:
//  1. Unit tests drive analysis::RaceDetector directly and pin the
//     FastTrack semantics (release/acquire edges order, missing edges
//     race, reads clear on writes).
//  2. Seeded races run deliberately broken publication protocols on the
//     simulator — a ring variant whose producer publishes its index with a
//     relaxed store, and a plain-field handoff with no synchronization at
//     all — and assert the detector flags them with the exact core pair,
//     site labels, and reproducible virtual timestamps. The negative arm
//     runs the corrected protocol and must stay silent.
//  3. Race-clean sweeps run every engine (including elastic ORTHRUS and a
//     WAL-durable run) at a small sim point with race_detect=on and assert
//     zero reports, plus the zero-perturbation pin: a race_detect=on run
//     is byte-identical (committed count and global virtual clock) to the
//     same run with the detector off.
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "analysis/race_detector.h"
#include "engine/deadlockfree/deadlockfree_engine.h"
#include "engine/orthrus/orthrus_engine.h"
#include "engine/partitioned/partitioned_engine.h"
#include "engine/sharedcc/sharedcc_engine.h"
#include "engine/twopl/twopl_engine.h"
#include "hal/sim_platform.h"
#include "wal/wal.h"
#include "workload/micro.h"
#include "workload/tpcc/tpcc_workload.h"

namespace orthrus {
namespace {

using analysis::RaceDetector;
using analysis::SyncOp;
using engine::DeadlockPolicyKind;
using engine::EngineOptions;
using engine::OrthrusOptions;
using workload::KvConfig;
using workload::KvWorkload;

// ------------------------------------------------------------- unit level

TEST(RaceDetectorUnit, ConflictingAccessesWithNoEdgeAreRaces) {
  RaceDetector d(2);
  std::uint64_t cell = 0;
  d.OnPlainAccess(&cell, 8, /*is_write=*/true, "unit.w", /*core=*/0,
                  /*time=*/10);
  d.OnPlainAccess(&cell, 8, /*is_write=*/false, "unit.r", /*core=*/1,
                  /*time=*/20);
  ASSERT_EQ(d.reports().size(), 1u);
  const analysis::RaceReport& r = d.reports()[0];
  EXPECT_EQ(r.addr, reinterpret_cast<std::uintptr_t>(&cell));
  EXPECT_EQ(r.prior.core, 0);
  EXPECT_TRUE(r.prior.is_write);
  EXPECT_STREQ(r.prior.label, "unit.w");
  EXPECT_EQ(r.prior.time, 10u);
  EXPECT_EQ(r.current.core, 1);
  EXPECT_FALSE(r.current.is_write);
  EXPECT_STREQ(r.current.label, "unit.r");
  EXPECT_EQ(r.current.time, 20u);
  EXPECT_FALSE(r.ToString().empty());
}

TEST(RaceDetectorUnit, ReleaseAcquireEdgeOrdersTheAccesses) {
  RaceDetector d(2);
  std::uint64_t cell = 0;
  int sync_var = 0;
  d.OnPlainAccess(&cell, 8, true, "unit.w", 0, 10);
  d.OnSyncAccess(&sync_var, SyncOp::kRelease, 0);
  d.OnSyncAccess(&sync_var, SyncOp::kAcquire, 1);
  d.OnPlainAccess(&cell, 8, false, "unit.r", 1, 20);
  EXPECT_TRUE(d.reports().empty());
  EXPECT_EQ(d.races_observed(), 0u);
}

TEST(RaceDetectorUnit, AcquireBeforeTheReleaseEstablishesNothing) {
  RaceDetector d(2);
  std::uint64_t cell = 0;
  int sync_var = 0;
  // The reader acquires *before* the writer releases: no edge.
  d.OnSyncAccess(&sync_var, SyncOp::kAcquire, 1);
  d.OnPlainAccess(&cell, 8, true, "unit.w", 0, 10);
  d.OnSyncAccess(&sync_var, SyncOp::kRelease, 0);
  d.OnPlainAccess(&cell, 8, false, "unit.r", 1, 20);
  ASSERT_EQ(d.reports().size(), 1u);
  EXPECT_EQ(d.reports()[0].prior.core, 0);
  EXPECT_EQ(d.reports()[0].current.core, 1);
}

TEST(RaceDetectorUnit, ReadThenUnorderedWriteIsARace) {
  RaceDetector d(2);
  std::uint64_t cell = 0;
  d.OnPlainAccess(&cell, 8, false, "unit.r", 0, 5);
  d.OnPlainAccess(&cell, 8, true, "unit.w", 1, 6);
  ASSERT_EQ(d.reports().size(), 1u);
  EXPECT_FALSE(d.reports()[0].prior.is_write);
  EXPECT_TRUE(d.reports()[0].current.is_write);
}

TEST(RaceDetectorUnit, SameCoreNeverRaces) {
  RaceDetector d(2);
  std::uint64_t cell = 0;
  d.OnPlainAccess(&cell, 8, true, "unit.w", 0, 1);
  d.OnPlainAccess(&cell, 8, true, "unit.w", 0, 2);
  d.OnPlainAccess(&cell, 8, false, "unit.r", 0, 3);
  EXPECT_TRUE(d.reports().empty());
}

TEST(RaceDetectorUnit, ForgetRangeDropsShadowState) {
  RaceDetector d(2);
  std::uint64_t cell = 0;
  d.OnPlainAccess(&cell, 8, true, "unit.w", 0, 1);
  d.ForgetRange(&cell, 8);
  d.OnPlainAccess(&cell, 8, true, "unit.w2", 1, 2);
  EXPECT_TRUE(d.reports().empty());
}

// ------------------------------------------------------------ seeded races

// A deliberately broken SPSC handoff: the producer publishes its index with
// a relaxed store (hal::Atomic::RawStore bypasses the modeled access, so no
// release edge exists), exactly the bug LineRing's index discipline
// prevents. One payload word, one flag.
struct BrokenRing {
  std::uint64_t payload = 0;
  hal::Atomic<std::uint64_t> flag;
};

TEST(RaceDetectorSim, UnsynchronizedRingPublicationIsFlagged) {
  hal::SimConfig cfg;
  cfg.race_detect = true;
  hal::SimPlatform sim(2, cfg);
  auto ring = std::make_unique<BrokenRing>();
  sim.Spawn(0, [&] {
    hal::RaceCheck(&ring->payload, sizeof(ring->payload), /*is_write=*/true,
                   "seed.ring.word");
    ring->payload = 42;
    ring->flag.RawStore(1);  // BUG: relaxed publication, no release edge
  });
  sim.Spawn(1, [&] {
    while (ring->flag.RawLoad() == 0) hal::CpuRelax();
    hal::RaceCheck(&ring->payload, sizeof(ring->payload), /*is_write=*/false,
                   "seed.ring.word");
    EXPECT_EQ(ring->payload, 42u);
  });
  sim.Run();
  RaceDetector* det = sim.race_detector();
  ASSERT_NE(det, nullptr);
  ASSERT_EQ(det->reports().size(), 1u);
  const analysis::RaceReport& r = det->reports()[0];
  EXPECT_EQ(r.addr, reinterpret_cast<std::uintptr_t>(&ring->payload));
  EXPECT_EQ(r.prior.core, 0);
  EXPECT_TRUE(r.prior.is_write);
  EXPECT_EQ(r.current.core, 1);
  EXPECT_FALSE(r.current.is_write);
  EXPECT_STREQ(r.prior.label, "seed.ring.word");
  EXPECT_STREQ(r.current.label, "seed.ring.word");
}

TEST(RaceDetectorSim, ProperReleaseAcquirePublicationIsClean) {
  hal::SimConfig cfg;
  cfg.race_detect = true;
  hal::SimPlatform sim(2, cfg);
  auto ring = std::make_unique<BrokenRing>();
  sim.Spawn(0, [&] {
    hal::RaceCheck(&ring->payload, sizeof(ring->payload), /*is_write=*/true,
                   "seed.ring.word");
    ring->payload = 42;
    ring->flag.store(1);  // modeled release store
  });
  sim.Spawn(1, [&] {
    while (ring->flag.load() == 0) hal::CpuRelax();  // modeled acquire load
    hal::RaceCheck(&ring->payload, sizeof(ring->payload), /*is_write=*/false,
                   "seed.ring.word");
    EXPECT_EQ(ring->payload, 42u);
  });
  sim.Run();
  ASSERT_NE(sim.race_detector(), nullptr);
  EXPECT_TRUE(sim.race_detector()->reports().empty());
  EXPECT_EQ(sim.race_detector()->races_observed(), 0u);
}

// The un-annotated plain-field handoff: two cores touch the same field with
// no synchronization anywhere. Write-write flavour.
TEST(RaceDetectorSim, PlainFieldHandoffIsFlaggedWithExactCorePair) {
  hal::SimConfig cfg;
  cfg.race_detect = true;
  hal::SimPlatform sim(3, cfg);
  auto field = std::make_unique<std::uint64_t>(0);
  sim.Spawn(0, [&] {
    hal::RaceCheck(field.get(), 8, /*is_write=*/true, "seed.field");
    *field = 1;
  });
  sim.Spawn(2, [&] {
    hal::RaceCheck(field.get(), 8, /*is_write=*/true, "seed.field");
    *field = 2;
  });
  sim.Run();
  RaceDetector* det = sim.race_detector();
  ASSERT_NE(det, nullptr);
  ASSERT_EQ(det->reports().size(), 1u);
  EXPECT_EQ(det->reports()[0].prior.core, 0);
  EXPECT_EQ(det->reports()[0].current.core, 2);
  EXPECT_STREQ(det->reports()[0].prior.label, "seed.field");
}

// The sim schedule is deterministic, so the first report is always the same
// one — same cores, same labels, same virtual timestamps.
TEST(RaceDetectorSim, FirstReportIsDeterministic) {
  auto run = [] {
    hal::SimConfig cfg;
    cfg.race_detect = true;
    hal::SimPlatform sim(2, cfg);
    auto ring = std::make_unique<BrokenRing>();
    sim.Spawn(0, [&] {
      hal::RaceCheck(&ring->payload, 8, true, "seed.ring.word");
      ring->payload = 7;
      ring->flag.RawStore(1);
    });
    sim.Spawn(1, [&] {
      while (ring->flag.RawLoad() == 0) hal::CpuRelax();
      hal::RaceCheck(&ring->payload, 8, false, "seed.ring.word");
    });
    sim.Run();
    const analysis::RaceReport& r = sim.race_detector()->reports().at(0);
    return std::make_tuple(r.prior.core, r.current.core, r.prior.time,
                           r.current.time, std::string(r.prior.label));
  };
  EXPECT_EQ(run(), run());
}

// -------------------------------------------------- race-clean engine runs

EngineOptions SmallRun(int cores) {
  EngineOptions o;
  o.num_cores = cores;
  o.duration_seconds = 0.05;
  o.max_txns_per_worker = 150;
  o.lock_buckets = 1 << 12;
  return o;
}

KvConfig SmallKv(int partitions) {
  KvConfig c;
  c.num_records = 5000;
  c.row_bytes = 64;
  c.ops_per_txn = 10;
  c.hot_records = 16;  // heavy conflicts exercise the grant paths
  c.num_partitions = partitions;
  return c;
}

struct CleanOutcome {
  std::uint64_t committed = 0;
  hal::Cycles clock = 0;
};

// Runs the engine on the simulator and, when race_detect is on, asserts the
// run produced no reports (printing the first one when it did).
CleanOutcome RunKv(engine::Engine* eng, KvWorkload* wl, int cores,
                   int table_partitions, bool race_detect) {
  storage::Database db;
  wl->Load(&db, table_partitions);
  hal::SimConfig cfg;
  cfg.race_detect = race_detect;
  hal::SimPlatform sim(cores, cfg);
  RunResult r = eng->Run(&sim, &db, *wl);
  EXPECT_GT(r.total.committed, 0u) << eng->name();
  if (race_detect) {
    RaceDetector* det = sim.race_detector();
    EXPECT_TRUE(det->reports().empty())
        << eng->name() << ": " << det->races_observed()
        << " races, first: " << det->reports().at(0).ToString();
  }
  return CleanOutcome{r.total.committed, sim.GlobalClock()};
}

TEST(RaceClean, TwoPlDreadlocksHighContention) {
  KvWorkload wl(SmallKv(1));
  engine::TwoPlEngine eng(SmallRun(4), DeadlockPolicyKind::kDreadlocks);
  RunKv(&eng, &wl, 4, 1, /*race_detect=*/true);
}

TEST(RaceClean, TwoPlWaitDieHighContention) {
  KvWorkload wl(SmallKv(1));
  engine::TwoPlEngine eng(SmallRun(4), DeadlockPolicyKind::kWaitDie);
  RunKv(&eng, &wl, 4, 1, /*race_detect=*/true);
}

TEST(RaceClean, DeadlockFreeHighContention) {
  KvWorkload wl(SmallKv(1));
  engine::DeadlockFreeEngine eng(SmallRun(4));
  RunKv(&eng, &wl, 4, 1, /*race_detect=*/true);
}

TEST(RaceClean, PartitionedStoreMultiPartition) {
  KvConfig c = SmallKv(4);
  c.hot_records = 0;
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 3;
  c.local_affinity = true;
  KvWorkload wl(c);
  engine::PartitionedEngine eng(SmallRun(4));
  RunKv(&eng, &wl, 4, 4, /*race_detect=*/true);
}

TEST(RaceClean, SharedCcEverywhereHighContention) {
  KvWorkload wl(SmallKv(2));
  engine::SharedCcEngine eng(SmallRun(4));
  RunKv(&eng, &wl, 4, 1, /*race_detect=*/true);
}

TEST(RaceClean, OrthrusMultiPartitionChain) {
  KvConfig c = SmallKv(3);
  c.hot_records = 0;
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 3;  // every txn chains across all three CC threads
  KvWorkload wl(c);
  OrthrusOptions oo;
  oo.num_cc = 3;
  engine::OrthrusEngine eng(SmallRun(7), oo);
  RunKv(&eng, &wl, 7, 1, /*race_detect=*/true);
}

TEST(RaceClean, OrthrusHighContention) {
  KvWorkload wl(SmallKv(2));
  OrthrusOptions oo;
  oo.num_cc = 2;
  engine::OrthrusEngine eng(SmallRun(6), oo);
  RunKv(&eng, &wl, 6, 1, /*race_detect=*/true);
}

TEST(RaceClean, OrthrusVectorizedCcHighContention) {
  // The vectorized drain stages messages into batch_buf_ and stashes
  // grants in per-exec arrays; both are CC-thread-private but the
  // detector must prove it — the staging buffer is RaceCheck-tagged.
  KvWorkload wl(SmallKv(2));
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.vectorized_cc = true;
  engine::OrthrusEngine eng(SmallRun(6), oo);
  RunKv(&eng, &wl, 6, 1, /*race_detect=*/true);
}

TEST(RaceClean, OrthrusSharedCcTable) {
  KvWorkload wl(SmallKv(2));
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.shared_cc_table = true;
  engine::OrthrusEngine eng(SmallRun(6), oo);
  RunKv(&eng, &wl, 6, 1, /*race_detect=*/true);
}

TEST(RaceClean, ElasticOrthrusWithCcHandoff) {
  KvConfig c = SmallKv(4);
  c.hot_records = 0;
  c.placement = KvConfig::Placement::kFixedCount;
  c.partitions_per_txn = 2;
  KvWorkload wl(c);
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.elastic = true;
  oo.elastic_cc = true;
  oo.elastic_epoch_seconds = 0.0002;  // several epochs inside the run
  engine::OrthrusEngine eng(SmallRun(6), oo);
  RunKv(&eng, &wl, 6, 1, /*race_detect=*/true);
}

TEST(RaceClean, WalDurableTwoPl) {
  KvWorkload wl(SmallKv(4));
  storage::Database db;
  wl.Load(&db, 1);
  wal::DurabilityOptions dopts;
  wal::GroupCommitLog log(dopts, &db, /*n_producers=*/4);
  EngineOptions o = SmallRun(4);
  o.wal = &log;
  engine::TwoPlEngine eng(o, DeadlockPolicyKind::kWaitDie);
  hal::SimConfig cfg;
  cfg.race_detect = true;
  hal::SimPlatform sim(4 + log.loggers(), cfg);
  RunResult r = eng.Run(&sim, &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  RaceDetector* det = sim.race_detector();
  EXPECT_TRUE(det->reports().empty())
      << det->races_observed()
      << " races, first: " << det->reports().at(0).ToString();
}

TEST(RaceClean, TpccOrthrusFullMix) {
  workload::tpcc::TpccScale s;
  s.warehouses = 4;
  s.customers_per_district = 60;
  s.items = 200;
  s.order_ring_capacity = 8192;
  s.mix = workload::tpcc::FullTpccMix();
  workload::tpcc::TpccWorkload wl(s);
  storage::Database db;
  wl.Load(&db, 1);
  db.partitioner().n = 2;
  OrthrusOptions oo;
  oo.num_cc = 2;
  engine::OrthrusEngine eng(SmallRun(6), oo);
  hal::SimConfig cfg;
  cfg.race_detect = true;
  hal::SimPlatform sim(6, cfg);
  RunResult r = eng.Run(&sim, &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  RaceDetector* det = sim.race_detector();
  EXPECT_TRUE(det->reports().empty())
      << det->races_observed()
      << " races, first: " << det->reports().at(0).ToString();
}

// -------------------------------------------------- zero-perturbation pin

// Turning the detector on must not move the schedule by a single cycle:
// same committed count, same global virtual clock. (Stronger than "no
// regression": on and off are compared within one binary, so any detector
// hook that charged a cycle or yielded would fail here immediately.)
TEST(RaceDetectZeroPerturbation, OrthrusClockIsByteIdentical) {
  auto run = [](bool race_detect) {
    KvWorkload wl(SmallKv(2));
    OrthrusOptions oo;
    oo.num_cc = 2;
    engine::OrthrusEngine eng(SmallRun(6), oo);
    return RunKv(&eng, &wl, 6, 1, race_detect);
  };
  const CleanOutcome off = run(false);
  const CleanOutcome on = run(true);
  EXPECT_EQ(off.committed, on.committed);
  EXPECT_EQ(off.clock, on.clock);
}

TEST(RaceDetectZeroPerturbation, WalDurableClockIsByteIdentical) {
  auto run = [](bool race_detect) {
    KvWorkload wl(SmallKv(4));
    storage::Database db;
    wl.Load(&db, 1);
    wal::DurabilityOptions dopts;
    wal::GroupCommitLog log(dopts, &db, 4);
    EngineOptions o = SmallRun(4);
    o.wal = &log;
    engine::TwoPlEngine eng(o, DeadlockPolicyKind::kWaitDie);
    hal::SimConfig cfg;
    cfg.race_detect = race_detect;
    hal::SimPlatform sim(4 + log.loggers(), cfg);
    RunResult r = eng.Run(&sim, &db, wl);
    return CleanOutcome{r.total.committed, sim.GlobalClock()};
  };
  const CleanOutcome off = run(false);
  const CleanOutcome on = run(true);
  EXPECT_EQ(off.committed, on.committed);
  EXPECT_EQ(off.clock, on.clock);
}

}  // namespace
}  // namespace orthrus
