// Focused tests for ORTHRUS-engine behaviours beyond the generic engine
// integration suite: message economics of the forwarding optimization, the
// shared-CC-table mode (Section 3.4), in-flight window effects, CC/exec
// stats attribution, and Zipfian-skew handling.
#include <gtest/gtest.h>

#include "engine/orthrus/orthrus_engine.h"
#include "hal/native_platform.h"
#include "hal/sim_platform.h"
#include "workload/micro.h"

namespace orthrus {
namespace {

using engine::EngineOptions;
using engine::OrthrusEngine;
using engine::OrthrusOptions;
using workload::KvConfig;
using workload::KvWorkload;

EngineOptions SmallRun(int cores) {
  EngineOptions o;
  o.num_cores = cores;
  o.duration_seconds = 0.05;
  o.max_txns_per_worker = 120;
  o.lock_buckets = 1 << 12;
  return o;
}

RunResult RunOrthrus(const KvConfig& kv, OrthrusOptions oo, int cores,
                     KvWorkload** wl_out = nullptr,
                     storage::Database* db_out = nullptr, bool native = false) {
  static thread_local std::unique_ptr<KvWorkload> wl_holder;
  wl_holder = std::make_unique<KvWorkload>(kv);
  storage::Database local_db;
  storage::Database* db = db_out != nullptr ? db_out : &local_db;
  wl_holder->Load(db, 1);
  OrthrusEngine eng(SmallRun(cores), oo);
  RunResult r;
  if (native) {
    hal::NativePlatform p(cores);
    r = eng.Run(&p, db, *wl_holder);
  } else {
    hal::SimPlatform p(cores);
    r = eng.Run(&p, db, *wl_holder);
  }
  if (wl_out != nullptr) *wl_out = wl_holder.get();
  return r;
}

KvConfig MultiPartKv(int parts, int parts_per_txn) {
  KvConfig kv;
  kv.num_records = 4000;
  kv.num_partitions = parts;
  kv.placement = KvConfig::Placement::kFixedCount;
  kv.partitions_per_txn = parts_per_txn;
  return kv;
}

TEST(OrthrusMessages, ForwardingSavesMessages) {
  // With Ncc=3 partitions per txn: forwarding needs Ncc+1 = 4 lock-path
  // messages; exec-mediated hops need 2*Ncc = 6 (plus releases+acks and the
  // final grant in both modes). Compare measured messages per commit.
  OrthrusOptions fwd;
  fwd.num_cc = 3;
  OrthrusOptions nofwd = fwd;
  nofwd.forwarding = false;

  KvWorkload* wl = nullptr;
  storage::Database db1, db2;
  RunResult a = RunOrthrus(MultiPartKv(3, 3), fwd, 7, &wl, &db1);
  RunResult b = RunOrthrus(MultiPartKv(3, 3), nofwd, 7, &wl, &db2);
  ASSERT_GT(a.total.committed, 0u);
  ASSERT_GT(b.total.committed, 0u);
  const double per_a =
      static_cast<double>(a.total.messages_sent) / a.total.committed;
  const double per_b =
      static_cast<double>(b.total.messages_sent) / b.total.committed;
  // Both modes share: grant(1) + releases(3) + acks(3) = 7. Lock path: fwd
  // = acquire(1)+forwards(2) = 3; no-fwd = acquires(3)+stage-dones(2) = 5.
  EXPECT_NEAR(per_a, 10.0, 0.9);
  EXPECT_NEAR(per_b, 12.0, 0.9);
  EXPECT_LT(per_a, per_b);
}

TEST(OrthrusMessages, SinglePartitionCostsFourMessagesPerTxn) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  RunResult r = RunOrthrus(MultiPartKv(2, 1), oo, 6);
  ASSERT_GT(r.total.committed, 0u);
  // acquire + grant + release + ack = 4.
  EXPECT_NEAR(static_cast<double>(r.total.messages_sent) / r.total.committed,
              4.0, 0.5);
}

TEST(OrthrusSharedCc, CommitsAndConserves) {
  OrthrusOptions oo;
  oo.num_cc = 3;
  oo.shared_cc_table = true;
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(MultiPartKv(3, 2), oo, 7, &wl, &db);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(r.total.aborted, 0u);  // ordered acquisition: no deadlocks
  EXPECT_EQ(wl->SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusSharedCc, HighContentionConserves) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.shared_cc_table = true;
  KvConfig kv;
  kv.num_records = 4000;
  kv.hot_records = 8;  // extreme conflicts exercise parked continuations
  kv.num_partitions = 2;
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(kv, oo, 6, &wl, &db);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl->SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusSharedCc, WorksOnNativeThreads) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.shared_cc_table = true;
  KvConfig kv;
  kv.num_records = 4000;
  kv.hot_records = 32;
  kv.num_partitions = 2;
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(kv, oo, 5, &wl, &db, /*native=*/true);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl->SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusSharedCc, MessagesIndependentOfPartitionSpread) {
  // Shared table: one home CC regardless of how many partitions keys span.
  OrthrusOptions oo;
  oo.num_cc = 4;
  oo.shared_cc_table = true;
  RunResult r = RunOrthrus(MultiPartKv(4, 4), oo, 8);
  ASSERT_GT(r.total.committed, 0u);
  // acquire + grant + release + ack = 4, despite 4-partition key spread.
  EXPECT_NEAR(static_cast<double>(r.total.messages_sent) / r.total.committed,
              4.0, 0.5);
}

TEST(OrthrusStats, CcWorkersAccrueLockingTime) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  OrthrusEngine eng(SmallRun(6), oo);
  EXPECT_EQ(eng.num_cc(), 2);
  EXPECT_EQ(eng.num_exec(), 4);
  EXPECT_TRUE(eng.IsCcWorker(0));
  EXPECT_TRUE(eng.IsCcWorker(1));
  EXPECT_FALSE(eng.IsCcWorker(2));

  KvWorkload wl(MultiPartKv(2, 1));
  storage::Database db;
  wl.Load(&db, 1);
  hal::SimPlatform sim(6);
  RunResult r = eng.Run(&sim, &db, wl);
  ASSERT_GT(r.total.committed, 0u);
  // CC workers do locking work; exec workers do execution work.
  std::uint64_t cc_lock = 0, exec_exec = 0, cc_exec = 0;
  for (int i = 0; i < 6; ++i) {
    if (eng.IsCcWorker(i)) {
      cc_lock += r.per_worker[i].Get(TimeCategory::kLocking);
      cc_exec += r.per_worker[i].Get(TimeCategory::kExecution);
    } else {
      exec_exec += r.per_worker[i].Get(TimeCategory::kExecution);
    }
  }
  EXPECT_GT(cc_lock, 0u);
  EXPECT_GT(exec_exec, 0u);
  EXPECT_EQ(cc_exec, 0u);  // CC threads never run transaction logic
}

TEST(OrthrusInflight, WindowOneStillCorrect) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.max_inflight = 1;  // fully synchronous execution threads
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(MultiPartKv(2, 2), oo, 6, &wl, &db);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl->SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusInflight, WiderWindowRaisesThroughputWhenUncontended) {
  KvConfig kv;
  kv.num_records = 50000;
  kv.num_partitions = 2;
  OrthrusOptions narrow;
  narrow.num_cc = 2;
  narrow.max_inflight = 1;
  OrthrusOptions wide = narrow;
  wide.max_inflight = 16;

  auto run = [&](OrthrusOptions oo) {
    KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, 1);
    EngineOptions o = SmallRun(6);
    o.max_txns_per_worker = 0;       // time-bound for a fair rate comparison
    o.duration_seconds = 0.002;
    OrthrusEngine eng(o, oo);
    hal::SimPlatform sim(6);
    return eng.Run(&sim, &db, wl).Throughput();
  };
  EXPECT_GT(run(wide), run(narrow) * 1.2);
}

TEST(OrthrusCombinedGrants, ConservesAndSendsFewerWords) {
  // Grant combining packs the quantum's grants per exec thread into one
  // word apiece: same commits, same effects, strictly fewer words on the
  // CC->exec path than one-word-per-grant.
  OrthrusOptions plain;
  plain.num_cc = 2;
  plain.max_inflight = 8;
  OrthrusOptions combined = plain;
  combined.combined_grants = true;

  KvConfig kv;
  kv.num_records = 4000;
  kv.hot_records = 16;  // conflicts queue grants, so release bursts them
  kv.num_partitions = 2;
  KvWorkload* wl = nullptr;
  storage::Database db1, db2;
  RunResult a = RunOrthrus(kv, plain, 6, &wl, &db1);
  RunResult b = RunOrthrus(kv, combined, 6, &wl, &db2);
  ASSERT_GT(a.total.committed, 0u);
  ASSERT_GT(b.total.committed, 0u);
  EXPECT_EQ(wl->SumCounters(db2), b.total.committed * 10);
  const double per_a =
      static_cast<double>(a.total.messages_sent) / a.total.committed;
  const double per_b =
      static_cast<double>(b.total.messages_sent) / b.total.committed;
  EXPECT_LT(per_b, per_a);  // combining can only remove words
}

TEST(OrthrusCombinedGrants, RejectsOversizedInflightWindow) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.combined_grants = true;
  oo.max_inflight = 257;  // slot ids no longer fit one byte
  EXPECT_DEATH(OrthrusEngine(SmallRun(6), oo), "CHECK");
}

TEST(OrthrusAdaptiveFlush, ConservesUnderShallowBursts) {
  // Depth-triggered flush boundaries change message timing, never message
  // content: commits and effects must be conserved.
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.adaptive_flush = true;
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(MultiPartKv(2, 2), oo, 6, &wl, &db);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl->SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusZipfian, SkewedWorkloadConserves) {
  KvConfig kv;
  kv.num_records = 8000;
  kv.zipf_theta = 0.9;
  kv.num_partitions = 2;
  OrthrusOptions oo;
  oo.num_cc = 2;
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(kv, oo, 6, &wl, &db);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl->SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusZipfian, SkewConcentratesConflictsOnHotPartition) {
  // Zipfian skew concentrates *conflicts* (not request counts: every
  // transaction still spreads ~10 keys over the partitions) on the
  // partition owning the hottest keys — key 0 lives on partition 0 under
  // modulo partitioning, so CC thread 0 must observe far more lock waits.
  KvConfig kv;
  kv.num_records = 8000;
  kv.zipf_theta = 0.9;
  kv.num_partitions = 4;
  OrthrusOptions oo;
  oo.num_cc = 4;
  KvWorkload wl(kv);
  storage::Database db;
  wl.Load(&db, 1);
  OrthrusEngine eng(SmallRun(10), oo);
  hal::SimPlatform sim(10);
  RunResult r = eng.Run(&sim, &db, wl);
  ASSERT_GT(r.total.committed, 0u);
  const std::uint64_t waits0 = r.per_worker[0].lock_waits;
  std::uint64_t waits_rest = 0;
  for (int c = 1; c < 4; ++c) waits_rest += r.per_worker[c].lock_waits;
  // The hot partition alone outweighs the other three combined.
  EXPECT_GT(waits0, waits_rest);
}

}  // namespace
}  // namespace orthrus

// ------------------------------------------------------------- autotune

#include "engine/autotune.h"

namespace orthrus {
namespace {

TEST(Autotune, PicksAReasonableSplit) {
  workload::KvConfig kv;
  kv.num_records = 20000;
  kv.num_partitions = 1;  // partition-agnostic (uniform placement)
  workload::KvWorkload wl(kv);
  engine::AutotuneOptions opts;
  opts.candidates = {1, 2, 4, 8};
  opts.probe_seconds = 0.001;
  engine::AutotuneResult r = engine::AutotuneThreadSplit(16, &wl, opts);
  EXPECT_EQ(r.probes.size(), 4u);
  EXPECT_GT(r.best_throughput, 0.0);
  EXPECT_GE(r.best_num_cc, 1);
  EXPECT_LE(r.best_num_cc, 8);
  // The winner's throughput must match its own probe entry.
  bool found = false;
  for (const auto& p : r.probes) {
    if (p.num_cc == r.best_num_cc) {
      EXPECT_DOUBLE_EQ(p.throughput, r.best_throughput);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Autotune, DefaultCandidatesArePowersOfTwo) {
  workload::KvConfig kv;
  kv.num_records = 10000;
  kv.num_partitions = 1;
  workload::KvWorkload wl(kv);
  engine::AutotuneOptions opts;
  opts.probe_seconds = 0.0005;
  engine::AutotuneResult r = engine::AutotuneThreadSplit(8, &wl, opts);
  // Defaults: 1, 2, 4 (candidates must leave at least one exec core).
  EXPECT_EQ(r.probes.size(), 3u);
}

// ------------------------------------------------- ElasticController

TEST(ElasticController, SweepsThenHoldsAtTheKnee) {
  // Synthetic epoch throughput: rises to a knee at 6 active exec threads,
  // then degrades (over-subscription). The sweep probes 12..1, the hold
  // settles on the knee — the smallest target within tolerance of the
  // best sample — and stays.
  const auto tput = [](int active) {
    const double capacity = 6.0;
    const double a = static_cast<double>(active);
    return a <= capacity ? a : capacity - 0.4 * (a - capacity);
  };
  engine::ElasticController::Config cfg;
  cfg.min_active = 1;
  cfg.max_active = 12;
  cfg.initial = 12;
  cfg.tolerance = 0.03;
  engine::ElasticController c(cfg);
  EXPECT_EQ(c.target(), 12);
  EXPECT_EQ(c.phase(), engine::ElasticController::Phase::kSweep);
  int target = c.target();
  for (int epoch = 0; epoch < 40; ++epoch) {
    target = c.Step(tput(target));
  }
  EXPECT_EQ(c.phase(), engine::ElasticController::Phase::kHold);
  EXPECT_EQ(c.sweeps_completed(), 1);
  EXPECT_EQ(target, 6);  // exactly the knee: deterministic sweep + argmax
  EXPECT_NEAR(c.hold_throughput(), tput(6), 0.5);
  EXPECT_EQ(c.decisions(), 40);
}

TEST(ElasticController, MonotoneUtilityHoldsTheCeiling) {
  const auto tput = [](int active) { return static_cast<double>(active); };
  engine::ElasticController::Config cfg;
  cfg.min_active = 2;
  cfg.max_active = 8;
  cfg.initial = 1;  // below the floor: clamped up (sweep covers [2, 2])
  engine::ElasticController c(cfg);
  EXPECT_EQ(c.target(), 2);
  int target = c.target();
  for (int epoch = 0; epoch < 20; ++epoch) {
    target = c.Step(tput(target));
    EXPECT_GE(target, 2);
    EXPECT_LE(target, 8);
  }
  // The first sweep only saw [2]; after a (deterministically triggered)
  // hold it stays there — throughput never degrades, so no re-sweep. The
  // engine's default initial (max_active) is what makes the sweep cover
  // the full range.
  EXPECT_EQ(c.phase(), engine::ElasticController::Phase::kHold);
  EXPECT_EQ(target, 2);

  engine::ElasticController::Config full = cfg;
  full.initial = 8;
  engine::ElasticController c2(full);
  target = c2.target();
  for (int epoch = 0; epoch < 20; ++epoch) {
    target = c2.Step(tput(target));
  }
  EXPECT_EQ(target, 8);  // monotone utility: the ceiling wins the sweep
}

TEST(ElasticController, FlatCurvePicksTheSmallestAllocation) {
  // All targets equivalent: the tie-break frees threads (smallest target
  // within tolerance of the best sample).
  engine::ElasticController::Config cfg;
  cfg.min_active = 1;
  cfg.max_active = 10;
  cfg.initial = 10;
  engine::ElasticController c(cfg);
  int target = c.target();
  for (int i = 0; i < 15; ++i) {
    target = c.Step(100.0);  // perfectly flat response
  }
  EXPECT_EQ(c.phase(), engine::ElasticController::Phase::kHold);
  EXPECT_EQ(target, 1);
}

TEST(ElasticController, PersistentDegradationTriggersResweep) {
  // Concave curve with knee 6 as above; after convergence the workload
  // shifts (throughput halves at every allocation). One bad epoch is
  // noise; two consecutive restart the sweep from the ceiling.
  const auto tput = [](int active) {
    const double a = static_cast<double>(active);
    return a <= 6.0 ? a : 6.0 - 0.4 * (a - 6.0);
  };
  engine::ElasticController::Config cfg;
  cfg.min_active = 1;
  cfg.max_active = 12;
  cfg.initial = 12;
  cfg.tolerance = 0.03;
  engine::ElasticController c(cfg);
  int target = c.target();
  for (int epoch = 0; epoch < 20; ++epoch) target = c.Step(tput(target));
  ASSERT_EQ(c.phase(), engine::ElasticController::Phase::kHold);
  ASSERT_EQ(target, 6);

  target = c.Step(0.5 * tput(target));  // one bad epoch: noise, still held
  EXPECT_EQ(c.phase(), engine::ElasticController::Phase::kHold);
  EXPECT_EQ(target, 6);
  target = c.Step(0.5 * tput(target));  // second in a row: workload moved
  EXPECT_EQ(c.phase(), engine::ElasticController::Phase::kSweep);
  EXPECT_EQ(target, 12);  // re-probing from the ceiling
  for (int epoch = 0; epoch < 20; ++epoch) {
    target = c.Step(0.5 * tput(target));
  }
  EXPECT_EQ(c.sweeps_completed(), 2);
  EXPECT_EQ(target, 6);  // re-converged on the shifted curve
}

// ------------------------------------------------- elastic engine mode

engine::EngineOptions ElasticRun(int cores) {
  engine::EngineOptions o;
  o.num_cores = cores;
  // Time-bound (no commit cap): elastic mode parks threads for whole
  // epochs, so per-worker caps are not a meaningful stop condition.
  o.duration_seconds = 0.004;
  o.lock_buckets = 1 << 12;
  return o;
}

TEST(OrthrusElastic, ConservesAcrossReallocationEpochs) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.elastic = true;
  oo.elastic_epoch_seconds = 0.0002;
  KvConfig kv;
  kv.num_records = 8000;
  kv.num_partitions = 2;
  KvWorkload wl(kv);
  storage::Database db;
  wl.Load(&db, 1);
  OrthrusEngine eng(ElasticRun(8), oo);
  hal::SimPlatform sim(8);
  RunResult r = eng.Run(&sim, &db, wl);
  ASSERT_GT(r.total.committed, 0u);
  // No message lost or duplicated across park/resume epochs: every commit
  // applied exactly once (the engine additionally CHECKs every queue
  // drained and every sender retired at teardown).
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
  // The controller actually moved the allocation at least once.
  EXPECT_GT(eng.reallocations(), 0u);
  EXPECT_GE(eng.final_exec_target(), 1);
  EXPECT_LE(eng.final_exec_target(), eng.num_exec());
}

TEST(OrthrusElastic, RunsAreDeterministic) {
  const auto run = [] {
    OrthrusOptions oo;
    oo.num_cc = 2;
    oo.elastic = true;
    oo.elastic_epoch_seconds = 0.0002;
    KvConfig kv;
    kv.num_records = 8000;
    kv.num_partitions = 2;
    KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, 1);
    OrthrusEngine eng(ElasticRun(8), oo);
    hal::SimPlatform sim(8);
    RunResult r = eng.Run(&sim, &db, wl);
    return std::make_pair(r.total.committed, eng.reallocations());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);  // same commits, same reallocation trace
  EXPECT_EQ(a.second, b.second);
}

TEST(OrthrusElastic, MinExecFloorIsRespected) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.elastic = true;
  oo.elastic_min_exec = 3;
  oo.elastic_epoch_seconds = 0.0002;
  KvConfig kv;
  kv.num_records = 8000;
  kv.num_partitions = 2;
  KvWorkload wl(kv);
  storage::Database db;
  wl.Load(&db, 1);
  OrthrusEngine eng(ElasticRun(8), oo);
  hal::SimPlatform sim(8);
  RunResult r = eng.Run(&sim, &db, wl);
  ASSERT_GT(r.total.committed, 0u);
  EXPECT_GE(eng.final_exec_target(), 3);
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusElastic, WorksOnNativeThreads) {
  // The park/resume protocol must be thread-safe under true concurrency,
  // not just under the cooperative simulator.
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.elastic = true;
  oo.elastic_epoch_seconds = 0.0005;
  KvConfig kv;
  kv.num_records = 4000;
  kv.num_partitions = 2;
  KvWorkload wl(kv);
  storage::Database db;
  wl.Load(&db, 1);
  engine::EngineOptions o = ElasticRun(6);
  o.duration_seconds = 0.05;  // wall seconds on the native platform
  OrthrusEngine eng(o, oo);
  hal::NativePlatform p(6);
  RunResult r = eng.Run(&p, &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
}

// --------------------------------------- ElasticController2D (grid)

TEST(ElasticController2D, SweepsTheGridThenHoldsAtTheKnee) {
  // Synthetic response surface: throughput saturates at cc=2 (more CC
  // threads buy nothing) and rises with exec up to 4 (over-subscription
  // degrades past it). The grid sweep probes every point; the hold settles
  // on the cheapest in-band point — (2, 4).
  const auto tput = [](int cc, int exec) {
    const double cc_eff = cc >= 2 ? 1.0 : 0.55;
    const double e = static_cast<double>(exec);
    const double exec_curve = e <= 4.0 ? e : 4.0 - 0.4 * (e - 4.0);
    return cc_eff * exec_curve;
  };
  engine::ElasticController2D::Config cfg;
  cfg.min_cc = 1;
  cfg.max_cc = 4;
  cfg.min_exec = 1;
  cfg.max_exec = 6;
  cfg.tolerance = 0.03;
  engine::ElasticController2D c(cfg);
  EXPECT_EQ(c.target().cc, 4);
  EXPECT_EQ(c.target().exec, 6);
  auto target = c.target();
  for (int epoch = 0; epoch < 40; ++epoch) {
    target = c.Step(tput(target.cc, target.exec));
  }
  EXPECT_EQ(c.phase(), engine::ElasticController2D::Phase::kHold);
  EXPECT_EQ(c.sweeps_completed(), 1);
  EXPECT_EQ(target.cc, 2);
  EXPECT_EQ(target.exec, 4);
}

TEST(ElasticController2D, FlatSurfaceFreesTheMostThreads) {
  engine::ElasticController2D::Config cfg;
  cfg.min_cc = 1;
  cfg.max_cc = 3;
  cfg.min_exec = 1;
  cfg.max_exec = 4;
  engine::ElasticController2D c(cfg);
  auto target = c.target();
  for (int i = 0; i < 20; ++i) target = c.Step(100.0);
  EXPECT_EQ(c.phase(), engine::ElasticController2D::Phase::kHold);
  EXPECT_EQ(target.cc, 1);
  EXPECT_EQ(target.exec, 1);
}

TEST(ElasticController2D, PersistentDegradationResweepsFromTheCorner) {
  const auto tput = [](int cc, int exec) {
    return (cc >= 2 ? 1.0 : 0.5) * static_cast<double>(exec <= 3 ? exec : 3);
  };
  engine::ElasticController2D::Config cfg;
  cfg.min_cc = 1;
  cfg.max_cc = 3;
  cfg.min_exec = 1;
  cfg.max_exec = 4;
  cfg.tolerance = 0.03;
  engine::ElasticController2D c(cfg);
  auto target = c.target();
  for (int i = 0; i < 20; ++i) target = c.Step(tput(target.cc, target.exec));
  ASSERT_EQ(c.phase(), engine::ElasticController2D::Phase::kHold);
  target = c.Step(0.4 * tput(target.cc, target.exec));  // one bad epoch
  EXPECT_EQ(c.phase(), engine::ElasticController2D::Phase::kHold);
  target = c.Step(0.4 * tput(target.cc, target.exec));  // two: drift
  EXPECT_EQ(c.phase(), engine::ElasticController2D::Phase::kSweep);
  EXPECT_EQ(target.cc, 3);
  EXPECT_EQ(target.exec, 4);
}

// --------------------------------------- elastic CC (lock::SpaceMap)

// 2 * num_cc lock partitions: the engine's elastic_cc default, which the
// database partitioner must agree with.
KvConfig ElasticCcKv(int num_cc) {
  KvConfig kv;
  kv.num_records = 8000;
  kv.num_partitions = 2 * num_cc;
  return kv;
}

TEST(OrthrusElasticCc, ConservesAcrossCcHandoffEpochs) {
  OrthrusOptions oo;
  oo.num_cc = 3;
  oo.elastic = true;
  oo.elastic_cc = true;
  oo.elastic_epoch_seconds = 0.0002;
  KvWorkload wl(ElasticCcKv(3));
  storage::Database db;
  wl.Load(&db, 1);
  OrthrusEngine eng(ElasticRun(8), oo);
  hal::SimPlatform sim(8);
  RunResult r = eng.Run(&sim, &db, wl);
  ASSERT_GT(r.total.committed, 0u);
  // No lock request lost or duplicated across any partition handoff:
  // every committed transaction's effects applied exactly once (the
  // engine additionally CHECKs at teardown that every shard's held-lock
  // count is zero and every queue drained empty).
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
  // The 2-D controller actually moved the CC population.
  EXPECT_GT(eng.cc_reallocations(), 0u);
  EXPECT_GE(eng.final_cc_target(), 1);
  EXPECT_LE(eng.final_cc_target(), eng.num_cc());
  EXPECT_GE(eng.final_exec_target(), 1);
  EXPECT_LE(eng.final_exec_target(), eng.num_exec());
}

TEST(OrthrusElasticCc, RunsAreDeterministic) {
  const auto run = [] {
    OrthrusOptions oo;
    oo.num_cc = 2;
    oo.elastic = true;
    oo.elastic_cc = true;
    oo.elastic_epoch_seconds = 0.0002;
    KvWorkload wl(ElasticCcKv(2));
    storage::Database db;
    wl.Load(&db, 1);
    OrthrusEngine eng(ElasticRun(8), oo);
    hal::SimPlatform sim(8);
    RunResult r = eng.Run(&sim, &db, wl);
    return std::make_tuple(r.total.committed, eng.reallocations(),
                           eng.cc_reallocations(), sim.GlobalClock());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);  // same commits, same reallocation trace, same clock
}

TEST(OrthrusElasticCc, MinCcFloorIsRespected) {
  OrthrusOptions oo;
  oo.num_cc = 3;
  oo.elastic = true;
  oo.elastic_cc = true;
  oo.elastic_min_cc = 2;
  oo.elastic_epoch_seconds = 0.0002;
  KvWorkload wl(ElasticCcKv(3));
  storage::Database db;
  wl.Load(&db, 1);
  OrthrusEngine eng(ElasticRun(8), oo);
  hal::SimPlatform sim(8);
  RunResult r = eng.Run(&sim, &db, wl);
  ASSERT_GT(r.total.committed, 0u);
  EXPECT_GE(eng.final_cc_target(), 2);
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusElasticCc, ExplicitPartitionCountAndContention) {
  // Finer partitioning (4x CC) under a hot-key conflict mix: handoffs
  // interleave with deep grant queues, the worst case for the
  // drain-to-empty transfer contract.
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.elastic = true;
  oo.elastic_cc = true;
  oo.cc_partitions = 8;
  oo.elastic_epoch_seconds = 0.0002;
  KvConfig kv;
  kv.num_records = 8000;
  kv.hot_records = 16;
  kv.num_partitions = 8;
  KvWorkload wl(kv);
  storage::Database db;
  wl.Load(&db, 1);
  OrthrusEngine eng(ElasticRun(8), oo);
  hal::SimPlatform sim(8);
  RunResult r = eng.Run(&sim, &db, wl);
  ASSERT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusElasticCc, ComposesWithCombinedGrantsAndNoForwarding) {
  // The two message-protocol variants that interact with stage routing:
  // packed CC->exec grant words, and exec-mediated (non-forwarded)
  // acquisition hops. Both must conserve effects across CC handoffs.
  for (const bool forwarding : {true, false}) {
    OrthrusOptions oo;
    oo.num_cc = 2;
    oo.elastic = true;
    oo.elastic_cc = true;
    oo.elastic_epoch_seconds = 0.0002;
    oo.combined_grants = true;
    oo.forwarding = forwarding;
    KvWorkload wl(ElasticCcKv(2));
    storage::Database db;
    wl.Load(&db, 1);
    OrthrusEngine eng(ElasticRun(8), oo);
    hal::SimPlatform sim(8);
    RunResult r = eng.Run(&sim, &db, wl);
    ASSERT_GT(r.total.committed, 0u) << "forwarding=" << forwarding;
    EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10)
        << "forwarding=" << forwarding;
  }
}

TEST(OrthrusElasticCc, WorksOnNativeThreads) {
  // The handoff protocol's release/acquire owner-word chain must hold
  // under true concurrency, not just the cooperative simulator.
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.elastic = true;
  oo.elastic_cc = true;
  oo.elastic_epoch_seconds = 0.0005;
  KvWorkload wl(ElasticCcKv(2));
  storage::Database db;
  wl.Load(&db, 1);
  engine::EngineOptions o = ElasticRun(6);
  o.duration_seconds = 0.05;  // wall seconds on the native platform
  OrthrusEngine eng(o, oo);
  hal::NativePlatform p(6);
  RunResult r = eng.Run(&p, &db, wl);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusElasticCc, StaticKnobsAreInert) {
  // The sim-clock probe for the refactor: a run with every elastic_cc
  // knob at its default must be bit-identical — committed count, digest
  // inputs, and the global sim clock — to a run constructed with the
  // knobs spelled out as off. The routing layer must cost the static
  // path nothing.
  const auto run = [](bool spell_out) {
    OrthrusOptions oo;
    oo.num_cc = 2;
    oo.max_inflight = 4;
    if (spell_out) {
      oo.elastic_cc = false;
      oo.cc_partitions = 0;
      oo.elastic_min_cc = 1;
      oo.adaptive_drain_batch = false;
    }
    KvConfig kv;
    kv.num_records = 4000;
    kv.hot_records = 16;
    kv.num_partitions = 2;
    KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, 1);
    OrthrusEngine eng(SmallRun(6), oo);
    hal::SimPlatform sim(6);
    RunResult r = eng.Run(&sim, &db, wl);
    return std::make_pair(r.total.committed, sim.GlobalClock());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(OrthrusAdaptiveDrainBatch, ConservesAndStaysDeterministic) {
  // Receive-side burst-adaptive batch sizing changes delivery granularity,
  // never message content: commits and effects conserved, runs repeatable.
  const auto run = [] {
    OrthrusOptions oo;
    oo.num_cc = 2;
    oo.adaptive_drain_batch = true;
    KvConfig kv;
    kv.num_records = 4000;
    kv.hot_records = 16;
    kv.num_partitions = 2;
    KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, 1);
    OrthrusEngine eng(SmallRun(6), oo);
    hal::SimPlatform sim(6);
    RunResult r = eng.Run(&sim, &db, wl);
    return std::make_tuple(r.total.committed, wl.SumCounters(db),
                           sim.GlobalClock());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(std::get<0>(a), 0u);
  EXPECT_EQ(std::get<1>(a), std::get<0>(a) * 10);
  EXPECT_EQ(a, b);
}

TEST(OrthrusElastic, SharedCcTableComposes) {
  // Elastic exec threads over the Section 3.4 shared CC table: the home-CC
  // routing is unaffected by which exec threads are active.
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.shared_cc_table = true;
  oo.elastic = true;
  oo.elastic_epoch_seconds = 0.0002;
  KvConfig kv;
  kv.num_records = 8000;
  kv.num_partitions = 2;
  KvWorkload wl(kv);
  storage::Database db;
  wl.Load(&db, 1);
  OrthrusEngine eng(ElasticRun(8), oo);
  hal::SimPlatform sim(8);
  RunResult r = eng.Run(&sim, &db, wl);
  ASSERT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl.SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusVectorizedCc, ConservesAndCountsBatches) {
  // The vectorized CC stage drains a flat batch, prefetch-sweeps it, and
  // processes requests in arrival order with per-key combining. Grant
  // timing moves (single flush per batch), message content does not:
  // commits and effects are conserved, and the batch counters prove the
  // vector path actually ran.
  OrthrusOptions oo;
  oo.num_cc = 1;  // fan-in: every partition's requests share one CC batch
  oo.vectorized_cc = true;
  KvConfig kv;
  kv.num_records = 4000;
  // Single-op transactions on one hot key: every staged acquire and
  // release the CC thread drains names the same key, so a batch with two
  // or more messages is a combinable run by construction.
  kv.hot_records = 1;
  kv.hot_ops = 1;
  kv.ops_per_txn = 1;
  kv.num_partitions = 1;
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(kv, oo, 6, &wl, &db);
  ASSERT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl->SumCounters(db), r.total.committed * 1);
  ASSERT_GT(r.total.cc_batches, 0u);
  EXPECT_GE(r.total.cc_batch_msgs, r.total.cc_batches);
  EXPECT_GT(r.total.cc_key_runs_combined, 0u);
}

TEST(OrthrusVectorizedCc, ScalarRunLeavesBatchCountersZero) {
  // With the knob off the batch path must be unreachable: the counters it
  // alone increments stay zero.
  OrthrusOptions oo;
  oo.num_cc = 2;
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(MultiPartKv(2, 2), oo, 6, &wl, &db);
  ASSERT_GT(r.total.committed, 0u);
  EXPECT_EQ(r.total.cc_batches, 0u);
  EXPECT_EQ(r.total.cc_batch_msgs, 0u);
  EXPECT_EQ(r.total.cc_key_runs_combined, 0u);
}

TEST(OrthrusVectorizedCc, KnobOffIsByteIdentical) {
  // The sim-clock probe: a run with the vectorization knobs spelled out
  // as off must be bit-identical — committed count and global sim clock —
  // to a run constructed with defaults. The scalar drain loop must cost
  // the refactor nothing.
  const auto run = [](bool spell_out) {
    OrthrusOptions oo;
    oo.num_cc = 2;
    oo.max_inflight = 4;
    if (spell_out) {
      oo.vectorized_cc = false;
      oo.cc_batch = 256;
      oo.cc_prefetch = true;
      oo.cc_combine = true;
    }
    KvConfig kv;
    kv.num_records = 4000;
    kv.hot_records = 16;
    kv.num_partitions = 2;
    KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, 1);
    OrthrusEngine eng(SmallRun(6), oo);
    hal::SimPlatform sim(6);
    RunResult r = eng.Run(&sim, &db, wl);
    return std::make_pair(r.total.committed, sim.GlobalClock());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(OrthrusVectorizedCc, DeterministicAndComposesWithElasticCc) {
  // Vectorized drain over the elastic-CC multi-mesh: shard handoff epochs
  // change which CC thread drains a partition, never what the batch does.
  const auto run = [] {
    OrthrusOptions oo;
    oo.num_cc = 2;
    oo.vectorized_cc = true;
    oo.elastic = true;
    oo.elastic_cc = true;
    oo.elastic_epoch_seconds = 0.0002;
    KvWorkload wl(ElasticCcKv(2));
    storage::Database db;
    wl.Load(&db, 1);
    OrthrusEngine eng(ElasticRun(8), oo);
    hal::SimPlatform sim(8);
    RunResult r = eng.Run(&sim, &db, wl);
    return std::make_tuple(r.total.committed, wl.SumCounters(db),
                           sim.GlobalClock());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(std::get<0>(a), 0u);
  EXPECT_EQ(std::get<1>(a), std::get<0>(a) * 10);
  EXPECT_EQ(a, b);
}

TEST(OrthrusVectorizedCc, RejectsOversizedInflightWindow) {
  // The batch grant flush reuses the combined-grant encoding, so slot ids
  // must fit one byte even when combined_grants itself is off.
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.vectorized_cc = true;
  oo.max_inflight = 257;
  EXPECT_DEATH(OrthrusEngine(SmallRun(6), oo), "CHECK");
}

TEST(OrthrusVectorizedCc, RejectsSharedCcTable) {
  // The shared CC table's loop is not message-shaped; there is no drained
  // batch to vectorize.
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.vectorized_cc = true;
  oo.shared_cc_table = true;
  EXPECT_DEATH(OrthrusEngine(SmallRun(6), oo), "CHECK");
}

TEST(OrthrusSnapshotReads, OffIsByteIdentical) {
  // The sim-clock probe for the snapshot read path: with the knob off, no
  // version slab exists, no epoch ever ticks, no heartbeat is published,
  // and read-only classification is a plain core-local walk — so a run
  // with every snapshot knob spelled out as off must be bit-identical
  // (committed count, effects, and the global sim clock) to a run built
  // from the defaults, even over a stream that contains read-only
  // transactions for the path to miss.
  const auto run = [](bool spell_out) {
    OrthrusOptions oo;
    oo.num_cc = 2;
    oo.max_inflight = 4;
    if (spell_out) {
      oo.snapshot_reads = false;
      oo.snapshot_epoch_cycles = 12345;  // unused when the knob is off
    }
    KvConfig kv;
    kv.num_records = 4000;
    kv.hot_records = 16;
    kv.num_partitions = 2;
    kv.pct_read_only = 50;
    KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, 1);
    OrthrusEngine eng(SmallRun(6), oo);
    hal::SimPlatform sim(6);
    RunResult r = eng.Run(&sim, &db, wl);
    return std::make_tuple(r.total.committed, wl.SumCounters(db),
                           sim.GlobalClock());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(OrthrusSnapshotReads, ReadersBypassTheCcMesh) {
  // Functional pin for the bypass: over a mixed stream with a fixed commit
  // cap, turning snapshot_reads on must (a) commit the same transaction
  // set — the same count and the same RMW effects, since readers write
  // nothing and writers are untouched — and (b) send strictly fewer CC
  // messages, because every classified reader that used to buy locks by
  // mail now takes none at all.
  const auto run = [](bool snap) {
    OrthrusOptions oo;
    oo.num_cc = 2;
    // One in flight: the commit cap binds exactly, so both runs commit
    // exactly the first 120 transactions of each worker's stream and the
    // committed multisets are comparable.
    oo.max_inflight = 1;
    oo.snapshot_reads = snap;
    KvConfig kv;
    kv.num_records = 4000;
    kv.hot_records = 16;
    kv.num_partitions = 2;
    kv.pct_read_only = 50;
    KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, 1);
    // Budget far beyond what the cap needs: the cap, not the clock, ends
    // both runs, so they commit identical transaction sets.
    EngineOptions opts = SmallRun(6);
    opts.duration_seconds = 1000.0;
    opts.max_txns_per_worker = 60;
    OrthrusEngine eng(opts, oo);
    hal::SimPlatform sim(6);
    RunResult r = eng.Run(&sim, &db, wl);
    std::uint64_t msgs = 0;
    for (const auto& w : r.per_worker) msgs += w.messages_sent;
    return std::make_tuple(r.total.committed, wl.SumCounters(db), msgs);
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_GT(std::get<0>(on), 0u);
  EXPECT_EQ(std::get<0>(on), std::get<0>(off));
  EXPECT_EQ(std::get<1>(on), std::get<1>(off));
  EXPECT_LT(std::get<2>(on), std::get<2>(off));
}

TEST(OrthrusSnapshotReads, SnapshotRunsAreDeterministic) {
  // Same engine, same seed, twice: the snapshot path (epoch ticks, floor
  // spins, refresh-restarts included) must be exactly repeatable on the
  // simulator.
  const auto run = [] {
    OrthrusOptions oo;
    oo.num_cc = 2;
    oo.max_inflight = 4;
    oo.snapshot_reads = true;
    KvConfig kv;
    kv.num_records = 4000;
    kv.hot_records = 16;
    kv.num_partitions = 2;
    kv.pct_read_only = 50;
    KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, 1);
    OrthrusEngine eng(SmallRun(6), oo);
    hal::SimPlatform sim(6);
    RunResult r = eng.Run(&sim, &db, wl);
    return std::make_tuple(r.total.committed, wl.SumCounters(db),
                           sim.GlobalClock());
  };
  EXPECT_EQ(run(), run());
}

TEST(OrthrusSnapshotReads, ComposesWithElasticRoles) {
  // Snapshot reads under elastic exec parking: parked threads retire
  // their heartbeat slots (a frozen heartbeat would pin the read epoch
  // and stall every installing writer) and rejoin on resume. The run must
  // conserve effects and stay deterministic.
  const auto run = [] {
    OrthrusOptions oo;
    oo.num_cc = 2;
    oo.max_inflight = 4;
    oo.snapshot_reads = true;
    oo.elastic = true;
    oo.elastic_min_exec = 1;
    oo.elastic_initial_exec = 2;
    oo.elastic_epoch_seconds = 0.002;
    KvConfig kv;
    kv.num_records = 4000;
    kv.hot_records = 16;
    kv.num_partitions = 2;
    kv.pct_read_only = 50;
    KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, 1);
    OrthrusEngine eng(SmallRun(6), oo);
    hal::SimPlatform sim(6);
    RunResult r = eng.Run(&sim, &db, wl);
    return std::make_tuple(r.total.committed, wl.SumCounters(db),
                           sim.GlobalClock());
  };
  const auto a = run();
  EXPECT_GT(std::get<0>(a), 0u);
  EXPECT_EQ(a, run());
}

}  // namespace
}  // namespace orthrus
