// Focused tests for ORTHRUS-engine behaviours beyond the generic engine
// integration suite: message economics of the forwarding optimization, the
// shared-CC-table mode (Section 3.4), in-flight window effects, CC/exec
// stats attribution, and Zipfian-skew handling.
#include <gtest/gtest.h>

#include "engine/orthrus/orthrus_engine.h"
#include "hal/native_platform.h"
#include "hal/sim_platform.h"
#include "workload/micro.h"

namespace orthrus {
namespace {

using engine::EngineOptions;
using engine::OrthrusEngine;
using engine::OrthrusOptions;
using workload::KvConfig;
using workload::KvWorkload;

EngineOptions SmallRun(int cores) {
  EngineOptions o;
  o.num_cores = cores;
  o.duration_seconds = 0.05;
  o.max_txns_per_worker = 120;
  o.lock_buckets = 1 << 12;
  return o;
}

RunResult RunOrthrus(const KvConfig& kv, OrthrusOptions oo, int cores,
                     KvWorkload** wl_out = nullptr,
                     storage::Database* db_out = nullptr, bool native = false) {
  static thread_local std::unique_ptr<KvWorkload> wl_holder;
  wl_holder = std::make_unique<KvWorkload>(kv);
  storage::Database local_db;
  storage::Database* db = db_out != nullptr ? db_out : &local_db;
  wl_holder->Load(db, 1);
  OrthrusEngine eng(SmallRun(cores), oo);
  RunResult r;
  if (native) {
    hal::NativePlatform p(cores);
    r = eng.Run(&p, db, *wl_holder);
  } else {
    hal::SimPlatform p(cores);
    r = eng.Run(&p, db, *wl_holder);
  }
  if (wl_out != nullptr) *wl_out = wl_holder.get();
  return r;
}

KvConfig MultiPartKv(int parts, int parts_per_txn) {
  KvConfig kv;
  kv.num_records = 4000;
  kv.num_partitions = parts;
  kv.placement = KvConfig::Placement::kFixedCount;
  kv.partitions_per_txn = parts_per_txn;
  return kv;
}

TEST(OrthrusMessages, ForwardingSavesMessages) {
  // With Ncc=3 partitions per txn: forwarding needs Ncc+1 = 4 lock-path
  // messages; exec-mediated hops need 2*Ncc = 6 (plus releases+acks and the
  // final grant in both modes). Compare measured messages per commit.
  OrthrusOptions fwd;
  fwd.num_cc = 3;
  OrthrusOptions nofwd = fwd;
  nofwd.forwarding = false;

  KvWorkload* wl = nullptr;
  storage::Database db1, db2;
  RunResult a = RunOrthrus(MultiPartKv(3, 3), fwd, 7, &wl, &db1);
  RunResult b = RunOrthrus(MultiPartKv(3, 3), nofwd, 7, &wl, &db2);
  ASSERT_GT(a.total.committed, 0u);
  ASSERT_GT(b.total.committed, 0u);
  const double per_a =
      static_cast<double>(a.total.messages_sent) / a.total.committed;
  const double per_b =
      static_cast<double>(b.total.messages_sent) / b.total.committed;
  // Both modes share: grant(1) + releases(3) + acks(3) = 7. Lock path: fwd
  // = acquire(1)+forwards(2) = 3; no-fwd = acquires(3)+stage-dones(2) = 5.
  EXPECT_NEAR(per_a, 10.0, 0.9);
  EXPECT_NEAR(per_b, 12.0, 0.9);
  EXPECT_LT(per_a, per_b);
}

TEST(OrthrusMessages, SinglePartitionCostsFourMessagesPerTxn) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  RunResult r = RunOrthrus(MultiPartKv(2, 1), oo, 6);
  ASSERT_GT(r.total.committed, 0u);
  // acquire + grant + release + ack = 4.
  EXPECT_NEAR(static_cast<double>(r.total.messages_sent) / r.total.committed,
              4.0, 0.5);
}

TEST(OrthrusSharedCc, CommitsAndConserves) {
  OrthrusOptions oo;
  oo.num_cc = 3;
  oo.shared_cc_table = true;
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(MultiPartKv(3, 2), oo, 7, &wl, &db);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(r.total.aborted, 0u);  // ordered acquisition: no deadlocks
  EXPECT_EQ(wl->SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusSharedCc, HighContentionConserves) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.shared_cc_table = true;
  KvConfig kv;
  kv.num_records = 4000;
  kv.hot_records = 8;  // extreme conflicts exercise parked continuations
  kv.num_partitions = 2;
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(kv, oo, 6, &wl, &db);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl->SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusSharedCc, WorksOnNativeThreads) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.shared_cc_table = true;
  KvConfig kv;
  kv.num_records = 4000;
  kv.hot_records = 32;
  kv.num_partitions = 2;
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(kv, oo, 5, &wl, &db, /*native=*/true);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl->SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusSharedCc, MessagesIndependentOfPartitionSpread) {
  // Shared table: one home CC regardless of how many partitions keys span.
  OrthrusOptions oo;
  oo.num_cc = 4;
  oo.shared_cc_table = true;
  RunResult r = RunOrthrus(MultiPartKv(4, 4), oo, 8);
  ASSERT_GT(r.total.committed, 0u);
  // acquire + grant + release + ack = 4, despite 4-partition key spread.
  EXPECT_NEAR(static_cast<double>(r.total.messages_sent) / r.total.committed,
              4.0, 0.5);
}

TEST(OrthrusStats, CcWorkersAccrueLockingTime) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  OrthrusEngine eng(SmallRun(6), oo);
  EXPECT_EQ(eng.num_cc(), 2);
  EXPECT_EQ(eng.num_exec(), 4);
  EXPECT_TRUE(eng.IsCcWorker(0));
  EXPECT_TRUE(eng.IsCcWorker(1));
  EXPECT_FALSE(eng.IsCcWorker(2));

  KvWorkload wl(MultiPartKv(2, 1));
  storage::Database db;
  wl.Load(&db, 1);
  hal::SimPlatform sim(6);
  RunResult r = eng.Run(&sim, &db, wl);
  ASSERT_GT(r.total.committed, 0u);
  // CC workers do locking work; exec workers do execution work.
  std::uint64_t cc_lock = 0, exec_exec = 0, cc_exec = 0;
  for (int i = 0; i < 6; ++i) {
    if (eng.IsCcWorker(i)) {
      cc_lock += r.per_worker[i].Get(TimeCategory::kLocking);
      cc_exec += r.per_worker[i].Get(TimeCategory::kExecution);
    } else {
      exec_exec += r.per_worker[i].Get(TimeCategory::kExecution);
    }
  }
  EXPECT_GT(cc_lock, 0u);
  EXPECT_GT(exec_exec, 0u);
  EXPECT_EQ(cc_exec, 0u);  // CC threads never run transaction logic
}

TEST(OrthrusInflight, WindowOneStillCorrect) {
  OrthrusOptions oo;
  oo.num_cc = 2;
  oo.max_inflight = 1;  // fully synchronous execution threads
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(MultiPartKv(2, 2), oo, 6, &wl, &db);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl->SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusInflight, WiderWindowRaisesThroughputWhenUncontended) {
  KvConfig kv;
  kv.num_records = 50000;
  kv.num_partitions = 2;
  OrthrusOptions narrow;
  narrow.num_cc = 2;
  narrow.max_inflight = 1;
  OrthrusOptions wide = narrow;
  wide.max_inflight = 16;

  auto run = [&](OrthrusOptions oo) {
    KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, 1);
    EngineOptions o = SmallRun(6);
    o.max_txns_per_worker = 0;       // time-bound for a fair rate comparison
    o.duration_seconds = 0.002;
    OrthrusEngine eng(o, oo);
    hal::SimPlatform sim(6);
    return eng.Run(&sim, &db, wl).Throughput();
  };
  EXPECT_GT(run(wide), run(narrow) * 1.2);
}

TEST(OrthrusZipfian, SkewedWorkloadConserves) {
  KvConfig kv;
  kv.num_records = 8000;
  kv.zipf_theta = 0.9;
  kv.num_partitions = 2;
  OrthrusOptions oo;
  oo.num_cc = 2;
  KvWorkload* wl = nullptr;
  storage::Database db;
  RunResult r = RunOrthrus(kv, oo, 6, &wl, &db);
  EXPECT_GT(r.total.committed, 0u);
  EXPECT_EQ(wl->SumCounters(db), r.total.committed * 10);
}

TEST(OrthrusZipfian, SkewConcentratesConflictsOnHotPartition) {
  // Zipfian skew concentrates *conflicts* (not request counts: every
  // transaction still spreads ~10 keys over the partitions) on the
  // partition owning the hottest keys — key 0 lives on partition 0 under
  // modulo partitioning, so CC thread 0 must observe far more lock waits.
  KvConfig kv;
  kv.num_records = 8000;
  kv.zipf_theta = 0.9;
  kv.num_partitions = 4;
  OrthrusOptions oo;
  oo.num_cc = 4;
  KvWorkload wl(kv);
  storage::Database db;
  wl.Load(&db, 1);
  OrthrusEngine eng(SmallRun(10), oo);
  hal::SimPlatform sim(10);
  RunResult r = eng.Run(&sim, &db, wl);
  ASSERT_GT(r.total.committed, 0u);
  const std::uint64_t waits0 = r.per_worker[0].lock_waits;
  std::uint64_t waits_rest = 0;
  for (int c = 1; c < 4; ++c) waits_rest += r.per_worker[c].lock_waits;
  // The hot partition alone outweighs the other three combined.
  EXPECT_GT(waits0, waits_rest);
}

}  // namespace
}  // namespace orthrus

// ------------------------------------------------------------- autotune

#include "engine/autotune.h"

namespace orthrus {
namespace {

TEST(Autotune, PicksAReasonableSplit) {
  workload::KvConfig kv;
  kv.num_records = 20000;
  kv.num_partitions = 1;  // partition-agnostic (uniform placement)
  workload::KvWorkload wl(kv);
  engine::AutotuneOptions opts;
  opts.candidates = {1, 2, 4, 8};
  opts.probe_seconds = 0.001;
  engine::AutotuneResult r = engine::AutotuneThreadSplit(16, &wl, opts);
  EXPECT_EQ(r.probes.size(), 4u);
  EXPECT_GT(r.best_throughput, 0.0);
  EXPECT_GE(r.best_num_cc, 1);
  EXPECT_LE(r.best_num_cc, 8);
  // The winner's throughput must match its own probe entry.
  bool found = false;
  for (const auto& p : r.probes) {
    if (p.num_cc == r.best_num_cc) {
      EXPECT_DOUBLE_EQ(p.throughput, r.best_throughput);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Autotune, DefaultCandidatesArePowersOfTwo) {
  workload::KvConfig kv;
  kv.num_records = 10000;
  kv.num_partitions = 1;
  workload::KvWorkload wl(kv);
  engine::AutotuneOptions opts;
  opts.probe_seconds = 0.0005;
  engine::AutotuneResult r = engine::AutotuneThreadSplit(8, &wl, opts);
  // Defaults: 1, 2, 4 (candidates must leave at least one exec core).
  EXPECT_EQ(r.probes.size(), 3u);
}

}  // namespace
}  // namespace orthrus
