// YCSB contention explorer: sweeps the hot-set size for every engine and
// prints a table showing where each architecture's throughput collapses.
//
//   $ ./build/examples/ycsb_contention
//
// This is the experiment to run first when deciding whether delegated
// (ORTHRUS-style) concurrency control pays off for a workload: the answer
// depends almost entirely on how hot the hottest records are.
#include <cstdio>
#include <memory>
#include <vector>

#include "engine/deadlockfree/deadlockfree_engine.h"
#include "engine/orthrus/orthrus_engine.h"
#include "engine/twopl/twopl_engine.h"
#include "hal/sim_platform.h"
#include "workload/micro.h"

int main() {
  using namespace orthrus;

  const int kCores = 40;
  const std::vector<std::uint64_t> hot_sizes = {4096, 1024, 256, 64};

  std::printf("YCSB 10-RMW, %d cores; throughput in txns/s\n\n", kCores);
  std::printf("%-18s", "hot records:");
  for (auto h : hot_sizes) std::printf("%12llu", (unsigned long long)h);
  std::printf("\n");

  auto sweep = [&](const char* label,
                   const std::function<std::unique_ptr<engine::Engine>()>&
                       make) {
    std::printf("%-18s", label);
    for (std::uint64_t hot : hot_sizes) {
      workload::KvConfig kv;
      kv.num_records = 100000;
      kv.hot_records = hot;
      kv.num_partitions = 8;
      workload::KvWorkload wl(kv);
      storage::Database db;
      wl.Load(&db, 1);
      auto eng = make();
      hal::SimPlatform sim(kCores);
      RunResult r = eng->Run(&sim, &db, wl);
      std::printf("%12.0f", r.Throughput());
    }
    std::printf("\n");
  };

  engine::EngineOptions options;
  options.num_cores = kCores;
  options.duration_seconds = 0.004;

  sweep("orthrus", [&] {
    engine::OrthrusOptions oo;
    oo.num_cc = 8;
    return std::make_unique<engine::OrthrusEngine>(options, oo);
  });
  sweep("deadlock-free", [&] {
    return std::make_unique<engine::DeadlockFreeEngine>(options);
  });
  sweep("2pl-waitdie", [&] {
    return std::make_unique<engine::TwoPlEngine>(
        options, engine::DeadlockPolicyKind::kWaitDie);
  });
  sweep("2pl-dreadlocks", [&] {
    return std::make_unique<engine::TwoPlEngine>(
        options, engine::DeadlockPolicyKind::kDreadlocks);
  });

  std::printf("\nShrinking the hot set hurts every engine, but the locking\n"
              "baselines lose additional throughput to deadlock handling\n"
              "and lock-manager latch contention.\n");
  return 0;
}
