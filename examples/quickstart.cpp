// Quickstart: build a database, run the same contended workload through a
// conventional 2PL engine and through ORTHRUS, and compare.
//
//   $ ./build/examples/quickstart
//
// Everything runs on the deterministic multicore simulator, so the output
// is reproducible on any machine (including single-core ones).
#include <cstdio>

#include "engine/orthrus/orthrus_engine.h"
#include "engine/twopl/twopl_engine.h"
#include "hal/sim_platform.h"
#include "workload/micro.h"

int main() {
  using namespace orthrus;

  // A workload with a small hot set: every transaction updates 2 of 64 hot
  // records plus 8 cold ones — the paper's high-contention microbenchmark.
  workload::KvConfig kv;
  kv.num_records = 100000;
  kv.ops_per_txn = 10;
  kv.hot_records = 64;
  kv.num_partitions = 8;  // ORTHRUS will run 8 concurrency-control threads
  // Single-partition placement: each transaction's locks live on one CC
  // thread (the paper's best-case ORTHRUS configuration).
  kv.placement = workload::KvConfig::Placement::kFixedCount;
  kv.partitions_per_txn = 1;

  const int kCores = 40;
  const double kSeconds = 0.005;  // virtual seconds per run

  std::printf("workload: 10-RMW txns, 2 hot of %llu + 8 cold, %d cores\n\n",
              static_cast<unsigned long long>(kv.hot_records), kCores);

  // --- Conventional 2PL with Dreadlocks deadlock detection -------------
  {
    workload::KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, /*num_table_partitions=*/1);

    engine::EngineOptions options;
    options.num_cores = kCores;
    options.duration_seconds = kSeconds;
    engine::TwoPlEngine eng(options, engine::DeadlockPolicyKind::kDreadlocks);

    hal::SimPlatform sim(kCores);
    RunResult r = eng.Run(&sim, &db, wl);
    std::printf("%-18s %s\n", eng.name().c_str(), r.Summary().c_str());
  }

  // --- ORTHRUS: 8 CC threads + 32 execution threads ---------------------
  {
    workload::KvWorkload wl(kv);
    storage::Database db;
    wl.Load(&db, /*num_table_partitions=*/1);

    engine::EngineOptions options;
    options.num_cores = kCores;
    options.duration_seconds = kSeconds;
    engine::OrthrusOptions orthrus;
    orthrus.num_cc = 8;
    engine::OrthrusEngine eng(options, orthrus);

    hal::SimPlatform sim(kCores);
    RunResult r = eng.Run(&sim, &db, wl);
    std::printf("%-18s %s\n", eng.name().c_str(), r.Summary().c_str());
  }

  std::printf(
      "\nORTHRUS keeps contended lock meta-data core-local and avoids\n"
      "deadlock handling entirely, so it retains throughput that the\n"
      "conventional architecture loses to latch contention and aborts.\n");
  return 0;
}
