// Thread-allocation auto-tuning demo (Section 4.2).
//
//   $ ./build/examples/autotune_demo
//
// Figure 5 in the paper shows that the right split of cores between
// concurrency control and execution depends on the workload: lock-heavy
// transactions need more CC threads, compute-heavy ones need more
// execution threads. This demo probes the split for two contrasting
// workloads with engine::AutotuneThreadSplit and prints the probe table.
#include <cstdio>

#include "engine/autotune.h"
#include "workload/micro.h"

int main() {
  using namespace orthrus;

  const int kCores = 40;

  auto tune = [&](const char* label, workload::KvConfig kv) {
    workload::KvWorkload wl(kv);
    engine::AutotuneOptions opts;
    opts.candidates = {2, 4, 8, 16};
    opts.probe_seconds = 0.002;
    engine::AutotuneResult r = engine::AutotuneThreadSplit(kCores, &wl, opts);
    std::printf("\n%s (%d cores total):\n", label, kCores);
    for (const auto& p : r.probes) {
      std::printf("  %2d cc + %2d exec: %9.0f txns/s%s\n", p.num_cc,
                  kCores - p.num_cc, p.throughput,
                  p.num_cc == r.best_num_cc ? "   <-- best" : "");
    }
  };

  {
    // Lock-heavy: cheap logic, 10 locks per transaction. CC threads are
    // the bottleneck, so the tuner should prefer a CC-heavy split.
    workload::KvConfig kv;
    kv.num_records = 100000;
    kv.row_bytes = 64;
    kv.ops_per_txn = 10;
    tune("lock-heavy workload (10 cheap RMWs per txn)", kv);
  }
  {
    // Compute-heavy: fat rows make execution dominate; fewer CC threads
    // suffice and execution cores pay off.
    workload::KvConfig kv;
    kv.num_records = 20000;
    kv.row_bytes = 4000;  // ~16x the row-touch cost
    kv.ops_per_txn = 10;
    tune("compute-heavy workload (10 fat-row RMWs per txn)", kv);
  }

  std::printf(
      "\nThe best split is workload-dependent — the flexibility (and the\n"
      "tuning obligation) that partitioned functionality introduces.\n");
  return 0;
}
