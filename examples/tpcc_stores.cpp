// TPC-C demo: runs the NewOrder + Payment mix on every engine at two
// contention levels (1 warehouse = extreme, 32 warehouses = mild), prints
// throughput, abort rates and the CPU-time breakdown, and verifies the
// database's money/order conservation invariants after every run.
//
//   $ ./build/examples/tpcc_stores
#include <cstdio>
#include <functional>
#include <memory>

#include "engine/deadlockfree/deadlockfree_engine.h"
#include "engine/orthrus/orthrus_engine.h"
#include "engine/twopl/twopl_engine.h"
#include "hal/sim_platform.h"
#include "workload/tpcc/tpcc_workload.h"

int main() {
  using namespace orthrus;
  using workload::tpcc::TpccScale;
  using workload::tpcc::TpccWorkload;

  const int kCores = 40;
  engine::EngineOptions options;
  options.num_cores = kCores;
  options.duration_seconds = 0.004;

  auto run_one = [&](const char* label, TpccScale scale,
                     const std::function<std::unique_ptr<engine::Engine>()>&
                         make,
                     int partitioner_n) {
    TpccWorkload wl(scale);
    storage::Database db;
    wl.Load(&db, 1);
    if (partitioner_n != 0) db.partitioner().n = partitioner_n;
    auto eng = make();
    hal::SimPlatform sim(kCores);
    RunResult r = eng->Run(&sim, &db, wl);

    // Verify conservation invariants (Payment money, NewOrder order ids).
    const auto tally = wl.aux()->tallies.Sum();
    const bool consistent =
        tally.neworders + tally.payments == r.total.committed &&
        wl.TotalWarehouseYtd(db) == tally.payment_cents &&
        wl.TotalOrdersPlaced(db) == tally.neworders &&
        wl.TotalStockYtd(db) == tally.ordered_qty;

    std::printf("  %-16s %9.0f txns/s  aborts %5.1f%%  exec %4.1f%%  "
                "invariants %s\n",
                label, r.Throughput(), 100.0 * r.AbortRate(),
                100.0 * r.TimeFraction(TimeCategory::kExecution),
                consistent ? "OK" : "VIOLATED");
  };

  for (int warehouses : {1, 32}) {
    TpccScale scale;
    scale.warehouses = warehouses;
    scale.customers_per_district = 120;
    scale.items = 1000;
    scale.order_ring_capacity = 16384;
    std::printf("\nTPC-C with %d warehouse%s (%s contention), %d cores:\n",
                warehouses, warehouses == 1 ? "" : "s",
                warehouses == 1 ? "extreme" : "mild", kCores);

    const int n_cc = 8;
    run_one("orthrus", scale,
            [&] {
              engine::OrthrusOptions oo;
              oo.num_cc = n_cc;
              return std::make_unique<engine::OrthrusEngine>(options, oo);
            },
            n_cc);
    run_one("deadlock-free", scale,
            [&] {
              return std::make_unique<engine::DeadlockFreeEngine>(options);
            },
            0);
    run_one("2pl-dreadlocks", scale,
            [&] {
              return std::make_unique<engine::TwoPlEngine>(
                  options, engine::DeadlockPolicyKind::kDreadlocks);
            },
            0);
    run_one("2pl-waitdie", scale,
            [&] {
              return std::make_unique<engine::TwoPlEngine>(
                  options, engine::DeadlockPolicyKind::kWaitDie);
            },
            0);
  }
  return 0;
}
