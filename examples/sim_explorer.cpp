// Simulator explorer: demonstrates the three coherence mechanisms the
// multicore simulator models, independent of any database engine. Useful
// for understanding (and recalibrating) the cost model in
// hal::SimConfig.
//
//   $ ./build/examples/sim_explorer
#include <cstdio>
#include <memory>
#include <vector>

#include "hal/sim_platform.h"

using namespace orthrus::hal;

// Aggregate throughput of N cores doing fetch_add on one shared line vs one
// line each: shows RMW serialization (the root of Figure 1's collapse).
static void ContendedVsPrivate() {
  std::printf("1) Contended vs private atomic increments "
              "(ops/kilocycle, higher is better)\n");
  std::printf("   %8s %14s %14s\n", "cores", "one hot line", "private lines");
  for (int cores : {1, 2, 4, 8, 16, 32, 64}) {
    constexpr int kOps = 300;
    double shared_rate, private_rate;
    {
      SimPlatform sim(cores);
      auto hot = std::make_unique<Atomic<std::uint64_t>>();
      for (int i = 0; i < cores; ++i) {
        sim.Spawn(i, [&] {
          for (int k = 0; k < kOps; ++k) hot->fetch_add(1);
        });
      }
      sim.Run();
      shared_rate = 1000.0 * cores * kOps / sim.GlobalClock();
    }
    {
      SimPlatform sim(cores);
      std::vector<std::unique_ptr<Atomic<std::uint64_t>>> lines;
      for (int i = 0; i < cores; ++i) {
        lines.push_back(std::make_unique<Atomic<std::uint64_t>>());
      }
      for (int i = 0; i < cores; ++i) {
        sim.Spawn(i, [&, i] {
          for (int k = 0; k < kOps; ++k) lines[i]->fetch_add(1);
        });
      }
      sim.Run();
      private_rate = 1000.0 * cores * kOps / sim.GlobalClock();
    }
    std::printf("   %8d %14.2f %14.2f\n", cores, shared_rate, private_rate);
  }
}

// Latency of a spinlock critical section as waiters pile on: lock handoff
// under N spinning waiters costs O(N) coherence traffic.
static void SpinlockHandoff() {
  std::printf("\n2) Spinlock handoff cost vs number of contenders\n");
  std::printf("   %8s %22s\n", "cores", "cycles/critical-section");
  for (int cores : {1, 2, 4, 8, 16, 32}) {
    constexpr int kIters = 200;
    SimPlatform sim(cores);
    SpinLock lock;
    for (int i = 0; i < cores; ++i) {
      sim.Spawn(i, [&] {
        for (int k = 0; k < kIters; ++k) {
          lock.Lock();
          ConsumeCycles(100);  // short critical section
          lock.Unlock();
        }
      });
    }
    sim.Run();
    std::printf("   %8d %22.1f\n", cores,
                static_cast<double>(sim.GlobalClock()) / (cores * kIters));
  }
}

// Reader scaling on a read-mostly line: reads are concurrent (shared line
// copies), so read throughput scales until a writer invalidates everyone.
static void ReadersScale() {
  std::printf("\n3) Read-mostly line: reads scale, writes invalidate\n");
  std::printf("   %8s %16s\n", "readers", "reads/kilocycle");
  for (int cores : {1, 4, 16, 64}) {
    constexpr int kReads = 500;
    SimPlatform sim(cores);
    auto line = std::make_unique<Atomic<std::uint64_t>>();
    for (int i = 0; i < cores; ++i) {
      sim.Spawn(i, [&] {
        for (int k = 0; k < kReads; ++k) (void)line->load();
      });
    }
    sim.Run();
    std::printf("   %8d %16.2f\n", cores,
                1000.0 * cores * kReads / sim.GlobalClock());
  }
}

int main() {
  std::printf("ORTHRUS multicore-simulator cost model explorer\n");
  SimConfig cfg;
  std::printf("config: L1=%llu remote=%llu rmw-service=%llu "
              "invalidate/sharer=%llu relax=%llu cycles\n\n",
              (unsigned long long)cfg.l1_hit_cycles,
              (unsigned long long)cfg.remote_transfer_cycles,
              (unsigned long long)cfg.rmw_service_cycles,
              (unsigned long long)cfg.invalidate_per_sharer,
              (unsigned long long)cfg.relax_cycles);
  ContendedVsPrivate();
  SpinlockHandoff();
  ReadersScale();
  return 0;
}
