#!/usr/bin/env python3
"""Repo-contract lint for ORTHRUS. Run from the repo root: python3 tools/lint.py

Enforces three contracts that neither the compiler nor clang-tidy checks:

1. raw-sync: no raw std::atomic / std::mutex / std::shared_mutex /
   std::condition_variable in src/ outside src/hal/. All cross-core shared
   state must go through hal::Atomic / hal::SpinLock so the simulator
   charges coherence for it and the race detector sees the happens-before
   edge. A raw std::atomic works natively and silently disappears from both
   models (this exact bug shipped once: SharedCcEngine's grant flag).
   Escape: `// lint:allow-raw-atomic <why>` on the offending line or the
   line above it.

2. hot-alloc: no allocation (new / malloc / calloc / realloc / free /
   make_unique / make_shared) in src/mp/, src/lock/, src/storage/, or
   src/engine/orthrus/. The paper's tuned lock manager "never interacts
   with a memory allocator" on the hot path; these directories ARE hot
   path — the ORTHRUS CC loop's batch staging arrays, and the storage
   layer's version-install / snapshot-read fast paths, must come from
   setup-time sizing — so every allocation must be an explicitly
   marked setup/cold-path site.
   Escape: `// lint:allow-alloc <why>` on the offending line or the line
   above it.

3. sender-pairing: a test file that calls MultiMesh::RegisterSender() must
   also call RetireSender() (and vice versa). Static analysis cannot prove
   runtime counts balance, but a file that registers senders and never
   retires any leaks mesh slots across tests and trips the shutdown CHECK
   only under unrelated orderings.

Exit status 0 when clean, 1 with one `path:line: [rule] message` per
violation otherwise.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

RAW_SYNC = re.compile(
    r"std::(atomic\b|atomic<|mutex\b|shared_mutex\b|condition_variable\b)"
)
ALLOC = re.compile(
    r"(\bnew\s+[A-Za-z_:<]|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|"
    r"\bfree\s*\(|\bmake_unique\b|\bmake_shared\b)"
)


def strip_comments(text):
    """Blank out // and /* */ comment bodies, preserving line structure so
    reported line numbers stay correct. Lint escape markers are consumed by
    the caller before this runs."""
    out = []
    i, n = 0, len(text)
    in_block = False
    while i < n:
        if in_block:
            if text.startswith("*/", i):
                in_block = False
                i += 2
            else:
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
        elif text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
        elif text.startswith("/*", i):
            in_block = True
            i += 2
        elif text[i] in "\"'":
            quote = text[i]
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                out.append(" ")
                i += 2 if text[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def lint_file(path, rules):
    raw_lines = path.read_text().splitlines()
    code_lines = strip_comments("\n".join(raw_lines)).splitlines()
    violations = []
    for lineno, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
        # An escape marker covers its own line and the line below it.
        marked = raw + (raw_lines[lineno - 2] if lineno >= 2 else "")
        if "raw-sync" in rules and RAW_SYNC.search(code):
            if "lint:allow-raw-atomic" not in marked:
                violations.append(
                    (path, lineno, "raw-sync",
                     "raw std:: sync primitive outside src/hal/ — use "
                     "hal::Atomic / hal::SpinLock, or mark "
                     "`// lint:allow-raw-atomic <why>`"))
        if "hot-alloc" in rules and ALLOC.search(code):
            if "lint:allow-alloc" not in marked:
                violations.append(
                    (path, lineno, "hot-alloc",
                     "allocation in a hot-path directory — carve from an "
                     "arena, or mark the setup site "
                     "`// lint:allow-alloc <why>`"))
    return violations


def check_sender_pairing(path):
    text = strip_comments(path.read_text())
    registers = text.count("RegisterSender(")
    retires = text.count("RetireSender(")
    if (registers > 0) != (retires > 0):
        missing = "RetireSender" if registers else "RegisterSender"
        return [(path, 1, "sender-pairing",
                 f"file calls {'RegisterSender' if registers else 'RetireSender'} "
                 f"but never {missing} — mesh sender slots must be retired "
                 "in the same test file that registers them")]
    return []


def main():
    violations = []
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(REPO).as_posix()
        rules = set()
        if not rel.startswith("src/hal/"):
            rules.add("raw-sync")
        if rel.startswith(
                ("src/mp/", "src/lock/", "src/storage/",
                 "src/engine/orthrus/")):
            rules.add("hot-alloc")
        if rules:
            violations.extend(lint_file(path, rules))
    for path in sorted((REPO / "tests").glob("*.cc")):
        violations.extend(check_sender_pairing(path))

    for path, lineno, rule, msg in violations:
        rel = path.relative_to(REPO).as_posix()
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if violations:
        print(f"\nlint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
